"""The bench-regression gate: python -m repro.eval.compare."""

import json

import pytest

from repro.eval.compare import (
    ColumnVerdict,
    compare_file,
    main,
    render_markdown,
    render_text,
)


def _write(path, *, rows, columns=("workload", "charged_ms", "frozen_ms")):
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment_id": path.stem.replace("BENCH_", ""),
        "title": "test artifact",
        "columns": list(columns),
        "rows": rows,
        "notes": [],
    }
    path.write_text(json.dumps(payload))
    return path


def _dirs(tmp_path):
    return tmp_path / "current", tmp_path / "baselines"


def _args(current, baseline, *extra):
    return [
        "--current-dir", str(current), "--baseline-dir", str(baseline),
        *extra,
    ]


ROWS = [
    {"workload": "knn", "charged_ms": 1.0, "frozen_ms": 0.10},
    {"workload": "range", "charged_ms": 2.0, "frozen_ms": 0.20},
    {"workload": "mixed", "charged_ms": 3.0, "frozen_ms": 0.30},
]


class TestGate:
    def test_identical_artifacts_pass(self, tmp_path, capsys):
        current, baseline = _dirs(tmp_path)
        _write(current / "BENCH_x_smoke.json", rows=ROWS)
        _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        assert main(_args(current, baseline)) == 0
        out = capsys.readouterr().out
        assert "1.00x" in out and "ok" in out

    def test_median_regression_fails(self, tmp_path, capsys):
        current, baseline = _dirs(tmp_path)
        slow = [dict(r, frozen_ms=r["frozen_ms"] * 1.5) for r in ROWS]
        _write(current / "BENCH_x_smoke.json", rows=slow)
        _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        assert main(_args(current, baseline)) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "frozen_ms" in captured.err

    def test_single_row_outlier_tolerated_by_median(self, tmp_path):
        current, baseline = _dirs(tmp_path)
        rows = [dict(r) for r in ROWS]
        rows[0]["frozen_ms"] *= 10  # one noisy workload, median unmoved
        _write(current / "BENCH_x_smoke.json", rows=rows)
        _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        assert main(_args(current, baseline)) == 0

    def test_threshold_flag(self, tmp_path):
        current, baseline = _dirs(tmp_path)
        slow = [dict(r, frozen_ms=r["frozen_ms"] * 1.4) for r in ROWS]
        _write(current / "BENCH_x_smoke.json", rows=slow)
        _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        assert main(_args(current, baseline, "--threshold", "0.5")) == 0
        assert main(_args(current, baseline, "--threshold", "0.2")) == 1

    def test_improvement_passes(self, tmp_path):
        current, baseline = _dirs(tmp_path)
        fast = [dict(r, frozen_ms=r["frozen_ms"] * 0.5) for r in ROWS]
        _write(current / "BENCH_x_smoke.json", rows=fast)
        _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        assert main(_args(current, baseline)) == 0

    def test_missing_baseline_is_new_not_failure(self, tmp_path, capsys):
        current, baseline = _dirs(tmp_path)
        _write(current / "BENCH_x_smoke.json", rows=ROWS)
        baseline.mkdir()
        assert main(_args(current, baseline)) == 0
        assert "new" in capsys.readouterr().out

    def test_no_artifacts_is_an_error(self, tmp_path, capsys):
        current, baseline = _dirs(tmp_path)
        current.mkdir()
        assert main(_args(current, baseline)) == 2
        assert "run the smoke benches" in capsys.readouterr().err

    def test_summary_markdown_written(self, tmp_path):
        current, baseline = _dirs(tmp_path)
        _write(current / "BENCH_x_smoke.json", rows=ROWS)
        _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        summary = tmp_path / "summary.md"
        assert main(_args(current, baseline, "--summary", str(summary))) == 0
        text = summary.read_text()
        assert "### Bench-regression trajectory" in text
        assert "| x_smoke | charged_ms |" in text

    def test_github_step_summary_env(self, tmp_path, monkeypatch):
        current, baseline = _dirs(tmp_path)
        _write(current / "BENCH_x_smoke.json", rows=ROWS)
        _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        summary = tmp_path / "gh_summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert main(_args(current, baseline)) == 0
        assert "trajectory" in summary.read_text()


class TestMatching:
    def test_rows_matched_by_label_not_position(self, tmp_path):
        current, baseline = _dirs(tmp_path)
        cur = _write(current / "BENCH_x_smoke.json", rows=list(reversed(ROWS)))
        base = _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        verdicts = compare_file(cur, base)
        assert all(v.ratio == pytest.approx(1.0) for v in verdicts)
        assert all(v.status == "ok" for v in verdicts)

    def test_only_ms_columns_tracked(self, tmp_path):
        current, baseline = _dirs(tmp_path)
        columns = ("workload", "charged_ms", "speedup")
        rows = [{"workload": "knn", "charged_ms": 1.0, "speedup": 9.0}]
        cur = _write(current / "BENCH_x_smoke.json", rows=rows, columns=columns)
        base = _write(
            baseline / "BENCH_x_smoke.json", rows=rows, columns=columns
        )
        verdicts = compare_file(cur, base)
        assert [v.column for v in verdicts] == ["charged_ms"]

    def test_disjoint_labels_fail_closed(self, tmp_path, capsys):
        current, baseline = _dirs(tmp_path)
        cur = _write(
            current / "BENCH_x_smoke.json",
            rows=[{"workload": "other", "charged_ms": 1.0, "frozen_ms": 1.0}],
        )
        base = _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        verdicts = compare_file(cur, base)
        assert {v.status for v in verdicts} == {"incomparable"}
        # a baseline the ratchet can no longer grip must surface as red
        assert all(v.failed for v in verdicts)
        assert main(_args(current, baseline)) == 1
        assert "incomparable" in capsys.readouterr().err

    def test_empty_rows_fail_closed(self, tmp_path):
        current, baseline = _dirs(tmp_path)
        _write(current / "BENCH_x_smoke.json", rows=[])
        _write(baseline / "BENCH_x_smoke.json", rows=ROWS)
        assert main(_args(current, baseline)) == 1


class TestRendering:
    def test_renderers_cover_all_statuses(self):
        verdicts = [
            ColumnVerdict("b", "a_ms", 1.0, 1.1, 1.1, "ok"),
            ColumnVerdict("b", "b_ms", 1.0, 2.0, 2.0, "REGRESSION"),
            ColumnVerdict("b", "c_ms", 0.0, 1.0, None, "new"),
        ]
        text = render_text(verdicts, 0.25)
        markdown = render_markdown(verdicts, 0.25)
        for rendered in (text, markdown):
            assert "REGRESSION" in rendered
            assert "new" in rendered
            assert "1.25x" in rendered
