"""Engine construction helpers."""

import pytest

from repro.eval.datasets import load_dataset
from repro.eval.runner import (
    ENGINE_ORDER,
    build_engine,
    build_engines,
    make_objects,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("CA", num_nodes=300)


class TestRunner:
    def test_engine_order_covers_all_four(self):
        assert ENGINE_ORDER == ("NetExp", "Euclidean", "DistIdx", "ROAD")

    def test_make_objects(self, dataset):
        objects = make_objects(dataset.network, 12, seed=1)
        assert len(objects) == 12
        objects.validate_against(dataset.network)

    @pytest.mark.parametrize("name", ENGINE_ORDER)
    def test_build_each_engine(self, dataset, name):
        objects = make_objects(dataset.network, 6, seed=2)
        engine = build_engine(
            name, dataset.network, objects, road_levels=2, buffer_pages=8
        )
        assert engine.name == name
        assert engine.index_size_bytes > 0
        assert len(engine.knn(0, 2)) == 2

    def test_unknown_engine_rejected(self, dataset):
        objects = make_objects(dataset.network, 3, seed=2)
        with pytest.raises(KeyError):
            build_engine("Oracle", dataset.network, objects)

    def test_engines_get_private_network_copies(self, dataset):
        objects = make_objects(dataset.network, 4, seed=3)
        engine = build_engine(
            "NetExp", dataset.network, objects, buffer_pages=8
        )
        u, v, d = next(engine.network.edges())
        engine.update_edge_distance(u, v, d * 2)
        assert dataset.network.edge_distance(u, v) == pytest.approx(d)

    def test_build_engines_subset(self, dataset):
        objects = make_objects(dataset.network, 4, seed=4)
        engines = build_engines(
            dataset, objects, engines=("NetExp", "ROAD"), road_levels=2
        )
        assert sorted(engines) == ["NetExp", "ROAD"]
        assert engines["ROAD"].road.hierarchy.num_levels == 2
