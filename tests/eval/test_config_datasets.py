"""Evaluation configuration and dataset registry."""

import pytest

from repro.eval.config import (
    MINI_PROFILES,
    PAPER_PROFILES,
    profile,
    profiles,
    queries_per_run,
    scale_profile,
    table1_rows,
)
from repro.eval.datasets import dataset_levels, load_dataset


class TestConfig:
    def test_default_scale_is_mini(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_profile() == "mini"
        assert profiles() is MINI_PROFILES

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert scale_profile() == "paper"
        assert profiles() is PAPER_PROFILES

    def test_invalid_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "giant")
        with pytest.raises(ValueError):
            scale_profile()

    def test_paper_profiles_match_table1(self):
        assert PAPER_PROFILES["CA"].num_nodes == 21048
        assert PAPER_PROFILES["NA"].num_nodes == 175813
        assert PAPER_PROFILES["SF"].num_nodes == 174956
        assert PAPER_PROFILES["CA"].default_levels == 4
        assert PAPER_PROFILES["NA"].default_levels == 8
        assert PAPER_PROFILES["CA"].level_sweep == (2, 3, 4, 5, 6)

    def test_profile_lookup(self):
        assert profile("CA").name == "CA"
        with pytest.raises(KeyError):
            profile("XX")

    def test_queries_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERIES", "7")
        assert queries_per_run() == 7
        monkeypatch.delenv("REPRO_QUERIES")
        assert queries_per_run() >= 1

    def test_table1_rows_cover_parameters(self):
        rows = table1_rows()
        text = " ".join(str(r) for r in rows)
        assert "21,048" in text
        assert "kNN" in text
        assert "0.05" in text


class TestDatasets:
    def test_load_dataset_shapes(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATA_DIR", raising=False)
        load_dataset.cache_clear()
        dataset = load_dataset("CA", num_nodes=400)
        assert dataset.name == "CA"
        assert dataset.network.num_nodes == 400
        assert dataset.network.connected()
        assert dataset.diameter > 0

    def test_radius_fraction(self):
        dataset = load_dataset("CA", num_nodes=400)
        assert dataset.radius(0.1) == pytest.approx(dataset.diameter * 0.1)

    def test_dataset_levels_follow_profile(self):
        assert dataset_levels("CA") == profile("CA").default_levels

    def test_memoisation(self):
        a = load_dataset("CA", num_nodes=400)
        b = load_dataset("CA", num_nodes=400)
        assert a is b

    def test_real_files_used_when_available(self, tmp_path, monkeypatch):
        from repro.graph.generators import grid_network
        from repro.graph.io import save_network

        net = grid_network(5, 5, seed=1)
        save_network(net, tmp_path / "CA.cnode", tmp_path / "CA.cedge")
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        load_dataset.cache_clear()
        dataset = load_dataset("CA")
        assert dataset.network.num_nodes == 25  # the real (test) file
        load_dataset.cache_clear()
