"""Experiment functions: smoke runs on tiny replicas.

These validate that every figure's experiment executes end to end and
produces the right table shape; the benchmarks run them at full mini scale.
"""

import pytest

from repro.eval import experiments
from repro.eval.ablations import (
    ablation_abstracts,
    ablation_lemma4,
    ablation_metric,
    ablation_partitioner,
)
from repro.eval.datasets import load_dataset


@pytest.fixture(scope="module", autouse=True)
def tiny_datasets():
    """Shrink every dataset to a few hundred nodes for the smoke runs."""
    import repro.eval.config as config

    original = config.MINI_PROFILES
    config.MINI_PROFILES = {
        name: config.NetworkProfile(
            prof.name, 300, prof.edge_ratio, 0, prof.seed, 2, (1, 2), 6
        )
        for name, prof in original.items()
    }
    load_dataset.cache_clear()
    yield
    config.MINI_PROFILES = original
    load_dataset.cache_clear()


QUERIES = 3


class TestFigureExperiments:
    def test_table1(self):
        result = experiments.table1_parameters()
        assert len(result.rows) >= 8

    def test_fig11(self):
        result = experiments.fig11_illustration(num_objects=3, k=2)
        assert result.column("engine") == ["NetExp", "Euclidean", "DistIdx", "ROAD"]
        assert all(isinstance(v, (int, float)) for v in result.column("time_ms"))
        assert len(set(result.column("answers"))) == 1  # all agree

    def test_fig13(self):
        result = experiments.fig13_index_vs_objects(
            object_counts=(5, 10), engines=("NetExp", "ROAD")
        )
        assert len(result.rows) == 4
        assert all(v > 0 for v in result.column("size_mb"))

    def test_fig14(self):
        result = experiments.fig14_index_vs_network(
            networks=("CA",), num_objects=5, engines=("NetExp", "ROAD")
        )
        assert len(result.rows) == 2

    def test_fig15(self):
        result = experiments.fig15_object_update(
            networks=("CA",), num_objects=5, trials=2,
            engines=("NetExp", "ROAD"),
        )
        assert len(result.rows) == 2
        assert all(v >= 0 for v in result.column("delete_s"))

    def test_fig16(self):
        result = experiments.fig16_network_update(
            networks=("CA",), num_objects=5, trials=2,
            engines=("NetExp", "ROAD"),
        )
        assert len(result.rows) == 2

    def test_fig17a(self):
        result = experiments.fig17a_knn_vs_k(
            ks=(1, 2), num_objects=5, engines=("NetExp", "ROAD"),
            num_queries=QUERIES,
        )
        assert len(result.rows) == 4

    def test_fig17b(self):
        result = experiments.fig17b_knn_vs_objects(
            object_counts=(3, 6), engines=("NetExp", "ROAD"),
            num_queries=QUERIES,
        )
        assert len(result.rows) == 4

    def test_fig17c(self):
        result = experiments.fig17c_knn_vs_network(
            networks=("CA",), num_objects=5, engines=("ROAD",),
            num_queries=QUERIES,
        )
        assert len(result.rows) == 1

    def test_fig18a(self):
        result = experiments.fig18a_range_vs_radius(
            fractions=(0.05, 0.1), num_objects=5, engines=("NetExp", "ROAD"),
            num_queries=QUERIES,
        )
        assert len(result.rows) == 4

    def test_fig18b(self):
        result = experiments.fig18b_range_vs_objects(
            object_counts=(3, 6), engines=("ROAD",), num_queries=QUERIES
        )
        assert len(result.rows) == 2

    def test_fig18c(self):
        result = experiments.fig18c_range_vs_network(
            networks=("CA",), num_objects=5, engines=("ROAD",),
            num_queries=QUERIES,
        )
        assert len(result.rows) == 1

    def test_fig19(self):
        result = experiments.fig19_hierarchy_levels(
            networks=("CA",), num_objects=5, num_queries=QUERIES
        )
        assert len(result.rows) == 2  # the shrunk sweep (1, 2)
        assert all(v > 0 for v in result.column("build_s"))


class TestAblations:
    def test_lemma4(self):
        result = ablation_lemma4(num_objects=5, num_queries=QUERIES)
        assert result.column("reduction") == ["on", "off"]

    def test_abstracts(self):
        result = ablation_abstracts(num_objects=8, num_queries=QUERIES)
        assert set(result.column("abstract")) == {
            "exact", "counting", "bloom", "signature",
        }

    def test_partitioner(self):
        result = ablation_partitioner(num_objects=5, num_queries=QUERIES)
        assert "geometric+KL" in result.column("partitioner")

    def test_metric(self):
        result = ablation_metric(num_objects=5, num_queries=QUERIES)
        by_engine = {r["engine"]: r for r in result.rows}
        assert by_engine["ROAD"]["status"] == "ok"
        assert "refused" in by_engine["Euclidean"]["status"]
