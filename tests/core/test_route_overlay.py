"""Route Overlay storage layout: clustering, overflow, maintenance."""

import pytest

from repro.core.rnet import RnetHierarchy
from repro.core.route_overlay import RouteOverlay, RouteOverlayError
from repro.core.shortcuts import build_shortcuts
from repro.graph.generators import grid_network
from repro.partition.hierarchy import build_partition_tree
from repro.storage.pager import PAGE_HEADER_SIZE, PAGE_SIZE, PageManager


@pytest.fixture
def overlay_setting(medium_grid):
    tree = build_partition_tree(medium_grid, levels=2, fanout=4)
    hierarchy = RnetHierarchy(medium_grid, tree)
    shortcuts = build_shortcuts(medium_grid, hierarchy)
    pager = PageManager(buffer_pages=16)
    overlay = RouteOverlay(pager, medium_grid, hierarchy, shortcuts)
    return medium_grid, hierarchy, shortcuts, pager, overlay


class TestLayout:
    def test_every_node_indexed(self, overlay_setting):
        net, _, _, _, overlay = overlay_setting
        assert overlay.node_count == net.num_nodes
        for node in net.node_ids():
            assert overlay.has_node(node)

    def test_unknown_node_raises(self, overlay_setting):
        _, _, _, _, overlay = overlay_setting
        with pytest.raises(RouteOverlayError):
            overlay.shortcut_tree(99_999)

    def test_trees_match_freshly_built(self, overlay_setting):
        from repro.core.shortcut_tree import build_shortcut_tree

        net, hierarchy, shortcuts, _, overlay = overlay_setting
        for node in list(net.node_ids())[:15]:
            stored = overlay.shortcut_tree(node)
            fresh = build_shortcut_tree(net, hierarchy, shortcuts, node)
            assert sorted(stored.all_edges()) == sorted(fresh.all_edges())
            assert len(stored.roots) == len(fresh.roots)

    def test_clustering_gives_locality(self, overlay_setting):
        _, _, _, _, overlay = overlay_setting
        # BFS packing should co-locate a decent share of neighbours.
        assert overlay.locality() > 0.3

    def test_pages_respect_capacity(self, overlay_setting):
        _, _, _, pager, overlay = overlay_setting
        for page in pager.iter_pages(overlay.name):
            assert page.nbytes <= PAGE_SIZE - PAGE_HEADER_SIZE

    def test_expansion_io_beats_random_access(self, overlay_setting):
        """Reading a BFS neighbourhood costs fewer pages than node count."""
        net, _, _, pager, overlay = overlay_setting
        pager.drop_cache()
        pager.reset_stats()
        frontier, seen = [0], {0}
        for _ in range(30):
            node = frontier.pop(0)
            for neighbour, _ in overlay.shortcut_tree(node).all_edges():
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        assert pager.stats.reads < 30

    def test_size_accounts_directory_and_records(self, overlay_setting):
        _, _, _, _, overlay = overlay_setting
        assert overlay.size_bytes == overlay.page_count * PAGE_SIZE
        assert overlay.page_count > 1


class TestMaintenance:
    def test_refresh_keeps_tree_loadable(self, overlay_setting):
        net, _, _, _, overlay = overlay_setting
        node = next(iter(net.node_ids()))
        before = sorted(overlay.shortcut_tree(node).all_edges())
        overlay.refresh_node(node)
        after = sorted(overlay.shortcut_tree(node).all_edges())
        assert before == after

    def test_refresh_after_weight_change(self, overlay_setting):
        net, _, _, _, overlay = overlay_setting
        u, v, d = next(net.edges())
        net.update_edge(u, v, d * 3)
        overlay.refresh_nodes([u, v])
        assert dict(overlay.shortcut_tree(u).all_edges())[v] == pytest.approx(d * 3)

    def test_remove_node(self, overlay_setting):
        net, _, _, _, overlay = overlay_setting
        node = next(iter(net.node_ids()))
        overlay.remove_node(node)
        assert not overlay.has_node(node)
        assert overlay.node_count == net.num_nodes - 1

    def test_many_refreshes_preserve_page_budget(self, overlay_setting):
        net, _, _, pager, overlay = overlay_setting
        for node in list(net.node_ids())[:40]:
            overlay.refresh_node(node)
        for page in pager.iter_pages(overlay.name):
            assert page.nbytes <= PAGE_SIZE - PAGE_HEADER_SIZE
        for node in list(net.node_ids())[:40]:
            overlay.shortcut_tree(node)  # still loadable


class TestOverflowChains:
    def test_oversized_tree_spills_to_chain(self):
        """A node bordering many Rnets with many shortcuts overflows a page."""
        # A dense star-ish network partitioned deep creates fat trees; easier
        # to force: tiny page budget via a big tree by deep hierarchy.
        net = grid_network(14, 14, seed=3)
        tree = build_partition_tree(net, levels=4, fanout=4)
        hierarchy = RnetHierarchy(net, tree)
        shortcuts = build_shortcuts(net, hierarchy, reduce=False)
        pager = PageManager(buffer_pages=16)
        overlay = RouteOverlay(pager, net, hierarchy, shortcuts)
        # Regardless of whether any tree overflowed, every tree must load.
        for node in net.node_ids():
            overlay.shortcut_tree(node)
        # And if a chain exists, reading its node charges the extra pages.
        fat_nodes = [
            n
            for n in net.node_ids()
            if pager.read(overlay._node_page[n]).payload.overflow
        ]
        if fat_nodes:
            pager.drop_cache()
            pager.reset_stats()
            overlay.shortcut_tree(fat_nodes[0])
            assert pager.stats.reads >= 2
