"""Route Overlay storage layout: clustering, overflow, maintenance."""

import pytest

from repro.core.rnet import RnetHierarchy
from repro.core.route_overlay import RouteOverlay, RouteOverlayError
from repro.core.shortcuts import build_shortcuts
from repro.graph.generators import grid_network
from repro.partition.hierarchy import build_partition_tree
from repro.storage.pager import PAGE_HEADER_SIZE, PAGE_SIZE, PageManager


@pytest.fixture
def overlay_setting(medium_grid):
    tree = build_partition_tree(medium_grid, levels=2, fanout=4)
    hierarchy = RnetHierarchy(medium_grid, tree)
    shortcuts = build_shortcuts(medium_grid, hierarchy)
    pager = PageManager(buffer_pages=16)
    overlay = RouteOverlay(pager, medium_grid, hierarchy, shortcuts)
    return medium_grid, hierarchy, shortcuts, pager, overlay


class TestLayout:
    def test_every_node_indexed(self, overlay_setting):
        net, _, _, _, overlay = overlay_setting
        assert overlay.node_count == net.num_nodes
        for node in net.node_ids():
            assert overlay.has_node(node)

    def test_unknown_node_raises(self, overlay_setting):
        _, _, _, _, overlay = overlay_setting
        with pytest.raises(RouteOverlayError):
            overlay.shortcut_tree(99_999)

    def test_trees_match_freshly_built(self, overlay_setting):
        from repro.core.shortcut_tree import build_shortcut_tree

        net, hierarchy, shortcuts, _, overlay = overlay_setting
        for node in list(net.node_ids())[:15]:
            stored = overlay.shortcut_tree(node)
            fresh = build_shortcut_tree(net, hierarchy, shortcuts, node)
            assert sorted(stored.all_edges()) == sorted(fresh.all_edges())
            assert len(stored.roots) == len(fresh.roots)

    def test_clustering_gives_locality(self, overlay_setting):
        _, _, _, _, overlay = overlay_setting
        # BFS packing should co-locate a decent share of neighbours.
        assert overlay.locality() > 0.3

    def test_pages_respect_capacity(self, overlay_setting):
        _, _, _, pager, overlay = overlay_setting
        for page in pager.iter_pages(overlay.name):
            assert page.nbytes <= PAGE_SIZE - PAGE_HEADER_SIZE

    def test_expansion_io_beats_random_access(self, overlay_setting):
        """Reading a BFS neighbourhood costs fewer pages than node count."""
        net, _, _, pager, overlay = overlay_setting
        pager.drop_cache()
        pager.reset_stats()
        frontier, seen = [0], {0}
        for _ in range(30):
            node = frontier.pop(0)
            for neighbour, _ in overlay.shortcut_tree(node).all_edges():
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        assert pager.stats.reads < 30

    def test_size_accounts_directory_and_records(self, overlay_setting):
        _, _, _, _, overlay = overlay_setting
        assert overlay.size_bytes == overlay.page_count * PAGE_SIZE
        assert overlay.page_count > 1


class TestMaintenance:
    def test_refresh_keeps_tree_loadable(self, overlay_setting):
        net, _, _, _, overlay = overlay_setting
        node = next(iter(net.node_ids()))
        before = sorted(overlay.shortcut_tree(node).all_edges())
        overlay.refresh_node(node)
        after = sorted(overlay.shortcut_tree(node).all_edges())
        assert before == after

    def test_refresh_after_weight_change(self, overlay_setting):
        net, _, _, _, overlay = overlay_setting
        u, v, d = next(net.edges())
        net.update_edge(u, v, d * 3)
        overlay.refresh_nodes([u, v])
        assert dict(overlay.shortcut_tree(u).all_edges())[v] == pytest.approx(d * 3)

    def test_remove_node(self, overlay_setting):
        net, _, _, _, overlay = overlay_setting
        node = next(iter(net.node_ids()))
        overlay.remove_node(node)
        assert not overlay.has_node(node)
        assert overlay.node_count == net.num_nodes - 1

    def test_many_refreshes_preserve_page_budget(self, overlay_setting):
        net, _, _, pager, overlay = overlay_setting
        for node in list(net.node_ids())[:40]:
            overlay.refresh_node(node)
        for page in pager.iter_pages(overlay.name):
            assert page.nbytes <= PAGE_SIZE - PAGE_HEADER_SIZE
        for node in list(net.node_ids())[:40]:
            overlay.shortcut_tree(node)  # still loadable


class TestOverflowChains:
    def test_oversized_tree_spills_to_chain(self):
        """A node bordering many Rnets with many shortcuts overflows a page."""
        # A dense star-ish network partitioned deep creates fat trees; easier
        # to force: tiny page budget via a big tree by deep hierarchy.
        net = grid_network(14, 14, seed=3)
        tree = build_partition_tree(net, levels=4, fanout=4)
        hierarchy = RnetHierarchy(net, tree)
        shortcuts = build_shortcuts(net, hierarchy, reduce=False)
        pager = PageManager(buffer_pages=16)
        overlay = RouteOverlay(pager, net, hierarchy, shortcuts)
        # Regardless of whether any tree overflowed, every tree must load.
        for node in net.node_ids():
            overlay.shortcut_tree(node)
        # And if a chain exists, reading its node charges the extra pages.
        fat_nodes = [
            n
            for n in net.node_ids()
            if pager.read(overlay._node_page[n]).payload.overflow
        ]
        if fat_nodes:
            pager.drop_cache()
            pager.reset_stats()
            overlay.shortcut_tree(fat_nodes[0])
            assert pager.stats.reads >= 2


class TestPageReclamation:
    def test_remove_all_nodes_frees_record_pages(self, overlay_setting):
        """Regression: emptied record pages must be freed, not leaked."""
        net, _, _, pager, overlay = overlay_setting
        for node in sorted(net.node_ids()):
            overlay.remove_node(node)
        assert overlay.node_count == 0
        # Every record page is gone; only the (empty) directory remains.
        assert sum(1 for _ in pager.iter_pages(overlay.name)) == 0

    def test_removing_a_pages_residents_frees_it(self, overlay_setting):
        net, _, _, pager, overlay = overlay_setting
        # Remove every node co-located on one record page: it must be freed.
        page_id = overlay._node_page[0]
        residents = [n for n, p in overlay._node_page.items() if p == page_id]
        before = pager.page_count
        for node in residents:
            overlay.remove_node(node)
        assert pager.page_count < before
        assert all(p.page_id != page_id for p in pager.iter_pages(overlay.name))

    @staticmethod
    def _star_overlay():
        """A 320-spoke star: the hub's record overflows one page for sure."""
        import random

        from repro.graph.network import RoadNetwork

        rnd = random.Random(1)
        net = RoadNetwork()
        for i in range(320):
            net.add_node(i, rnd.uniform(0, 100), rnd.uniform(0, 100))
        for i in range(1, 320):
            net.add_edge(0, i, rnd.uniform(1.0, 5.0))
        tree = build_partition_tree(net, levels=2, fanout=4)
        hierarchy = RnetHierarchy(net, tree)
        shortcuts = build_shortcuts(net, hierarchy)
        pager = PageManager(buffer_pages=16)
        overlay = RouteOverlay(pager, net, hierarchy, shortcuts)
        fat_nodes = [
            n
            for n in net.node_ids()
            if pager.read(overlay._node_page[n]).payload.overflow
        ]
        assert fat_nodes, "star hub must overflow a record page"
        return pager, overlay, fat_nodes[0]

    def test_remove_oversized_node_frees_chain_and_page(self):
        """An oversized record frees its overflow chain *and* main page."""
        pager, overlay, node = self._star_overlay()
        chain = 1 + len(pager.read(overlay._node_page[node]).payload.overflow)
        before = pager.page_count
        overlay.remove_node(node)
        assert pager.page_count <= before - chain

    def test_refresh_oversized_node_reclaims_pages(self):
        """Refreshing a bulky record must not leave its old pages behind."""
        pager, overlay, node = self._star_overlay()
        baseline = pager.page_count
        for _ in range(5):
            overlay.refresh_node(node)
        # Stable: same-sized rebuilds reuse/free pages instead of growing.
        assert pager.page_count <= baseline + 1
        overlay.shortcut_tree(node)  # still loadable


class TestBulkExport:
    def test_iter_trees_complete_and_uncharged(self, overlay_setting):
        net, _, _, pager, overlay = overlay_setting
        pager.drop_cache()
        pager.reset_stats()
        trees = dict(overlay.iter_trees())
        assert pager.stats.reads == 0  # bulk export bypasses the buffer
        assert sorted(trees) == sorted(net.node_ids())
        for node, tree in trees.items():
            assert tree.node_id == node

    def test_stored_tree_single_node_uncharged(self, overlay_setting):
        net, _, _, pager, overlay = overlay_setting
        node = next(iter(net.node_ids()))
        charged = overlay.shortcut_tree(node)
        pager.drop_cache()
        pager.reset_stats()
        assert overlay.stored_tree(node) is charged  # same stored object
        assert pager.stats.reads == 0  # bypasses directory and buffer
        from repro.core.route_overlay import RouteOverlayError
        import pytest
        with pytest.raises(RouteOverlayError):
            overlay.stored_tree(10_000)
