"""Shortcuts: Definition 3 semantics, Lemma 2 composition, Lemma 4 reduction."""


import pytest

from repro.core.rnet import RnetHierarchy
from repro.core.shortcuts import (
    Shortcut,
    ShortcutIndex,
    build_shortcuts,
    reduce_shortcuts,
)
from repro.graph.generators import chain_network
from repro.graph.network import edge_key
from repro.graph.shortest_path import dijkstra_distances
from repro.partition.hierarchy import build_partition_tree


@pytest.fixture
def built(medium_grid):
    tree = build_partition_tree(medium_grid, levels=2, fanout=4)
    hierarchy = RnetHierarchy(medium_grid, tree)
    index = build_shortcuts(medium_grid, hierarchy)
    return medium_grid, hierarchy, index


def restricted_distance(network, rnet, source, target):
    """Dijkstra restricted to the Rnet's edges (the oracle for Def 3)."""

    def adjacency(node):
        for nbr, d in network.neighbours(node):
            if edge_key(node, nbr) in rnet.edges:
                yield nbr, d

    dist = dijkstra_distances(adjacency, source, targets={target})
    return dist.get(target)


class TestLeafShortcuts:
    def test_distances_match_restricted_dijkstra(self, built):
        net, hier, index = built
        for leaf in hier.leaves()[:8]:
            for shortcut in index.of_rnet(leaf.rnet_id):
                expected = restricted_distance(
                    net, leaf, shortcut.source, shortcut.target
                )
                assert expected is not None
                assert shortcut.distance == pytest.approx(expected)

    def test_all_reachable_border_pairs_present(self, built):
        net, hier, index = built
        for leaf in hier.leaves()[:8]:
            pairs = {(s.source, s.target) for s in index.of_rnet(leaf.rnet_id)}
            borders = sorted(leaf.border)
            for b in borders:
                for b2 in borders:
                    if b == b2:
                        continue
                    reachable = (
                        restricted_distance(net, leaf, b, b2) is not None
                    )
                    assert ((b, b2) in pairs) == reachable

    def test_endpoints_are_borders(self, built):
        _, hier, index = built
        for leaf in hier.leaves():
            for s in index.of_rnet(leaf.rnet_id):
                assert s.source in leaf.border
                assert s.target in leaf.border

    def test_via_nodes_lie_inside_rnet(self, built):
        _, hier, index = built
        for leaf in hier.leaves()[:8]:
            for s in index.of_rnet(leaf.rnet_id):
                assert set(s.via) <= leaf.nodes

    def test_via_path_distance_consistent(self, built):
        net, hier, index = built
        for leaf in hier.leaves()[:5]:
            for s in index.of_rnet(leaf.rnet_id):
                hops = [s.source, *s.via, s.target]
                total = sum(
                    net.edge_distance(a, b) for a, b in zip(hops, hops[1:])
                )
                assert total == pytest.approx(s.distance)


class TestUpperLevelShortcuts:
    def test_level1_matches_restricted_dijkstra(self, built):
        """Lemma 2: composed shortcuts equal direct in-Rnet shortest paths."""
        net, hier, index = built
        for rnet in hier.at_level(1):
            for s in index.of_rnet(rnet.rnet_id):
                expected = restricted_distance(net, rnet, s.source, s.target)
                assert expected is not None
                assert s.distance == pytest.approx(expected)

    def test_via_are_child_border_nodes(self, built):
        _, hier, index = built
        for rnet in hier.at_level(1):
            child_borders = set()
            for child_id in rnet.children:
                child_borders |= hier.rnet(child_id).border
            for s in index.of_rnet(rnet.rnet_id):
                assert set(s.via) <= child_borders

    def test_root_has_no_shortcuts(self, built):
        _, hier, index = built
        assert index.of_rnet(hier.root.rnet_id) == []


class TestChainExample:
    def test_figure8_chain_shortcuts(self):
        """The Figure 8 chain: shortcut distances are segment sums."""
        chain = chain_network(13, spacing=100.0)
        tree = build_partition_tree(chain, levels=2, fanout=2)
        hier = RnetHierarchy(chain, tree)
        index = build_shortcuts(chain, hier)
        for leaf in hier.leaves():
            for s in index.of_rnet(leaf.rnet_id):
                # On a chain, a within-Rnet path is just the node span.
                assert s.distance == pytest.approx(
                    abs(s.source - s.target) * 100.0
                )


class TestReduction:
    def test_reduction_preserves_pairwise_distances(self, built):
        """Lemma 4: Dijkstra over reduced set equals full-set distances."""
        _, hier, index = built
        for rnet in list(hier.rnets())[:20]:
            if rnet.is_root:
                continue
            full = index.of_rnet(rnet.rnet_id)
            reduced = index.stored_of_rnet(rnet.rnet_id)
            assert len(reduced) <= len(full)
            adjacency = {}
            for s in reduced:
                adjacency.setdefault(s.source, []).append((s.target, s.distance))
            for s in full:
                dist = dijkstra_distances(
                    lambda n: adjacency.get(n, ()), s.source, targets={s.target}
                )
                assert s.target in dist, f"reduction broke reachability: {s}"
                assert dist[s.target] == pytest.approx(s.distance)

    def test_reduce_drops_two_hop_compositions(self):
        shortcuts = [
            Shortcut(1, 2, 0, 1.0),
            Shortcut(2, 3, 0, 1.0),
            Shortcut(1, 3, 0, 2.0),  # = S(1,2) + S(2,3)
        ]
        kept = reduce_shortcuts(shortcuts)
        assert {(s.source, s.target) for s in kept} == {(1, 2), (2, 3)}

    def test_reduce_keeps_shorter_directs(self):
        shortcuts = [
            Shortcut(1, 2, 0, 1.0),
            Shortcut(2, 3, 0, 1.0),
            Shortcut(1, 3, 0, 1.5),  # strictly better than composition
        ]
        kept = reduce_shortcuts(shortcuts)
        assert {(s.source, s.target) for s in kept} == {
            (1, 2), (2, 3), (1, 3),
        }

    def test_reduce_empty(self):
        assert reduce_shortcuts([]) == []

    def test_no_reduction_mode(self, medium_grid):
        tree = build_partition_tree(medium_grid, levels=2, fanout=4)
        hier = RnetHierarchy(medium_grid, tree)
        full_index = build_shortcuts(medium_grid, hier, reduce=False)
        assert full_index.total(stored=True) == full_index.total()


class TestIndexOperations:
    def test_put_and_lookup(self):
        index = ShortcutIndex()
        s = Shortcut(1, 2, 7, 3.5, (9,))
        index.put(s)
        assert index.lookup(1, 2, 7) is s
        assert index.lookup(2, 1, 7) is None
        assert index.of_rnet(7) == [s]
        assert index.of_rnet(8) == []

    def test_replace_rnet(self):
        index = ShortcutIndex()
        index.put(Shortcut(1, 2, 7, 3.5))
        index.replace_rnet(7, [Shortcut(3, 4, 7, 1.0)])
        assert index.lookup(1, 2, 7) is None
        assert index.lookup(3, 4, 7) is not None

    def test_from_node_filters_source(self):
        index = ShortcutIndex(reduce=False)
        index.put(Shortcut(1, 2, 7, 3.5))
        index.put(Shortcut(2, 1, 7, 3.5))
        assert [s.target for s in index.from_node(1, 7)] == [2]

    def test_drop_rnet(self):
        index = ShortcutIndex()
        index.put(Shortcut(1, 2, 7, 3.5))
        index.drop_rnet(7)
        assert index.of_rnet(7) == []

    def test_totals_and_sizes(self, built):
        _, _, index = built
        assert index.total() >= index.total(stored=True) > 0
        assert index.size_bytes(stored=False) >= index.size_bytes(stored=True) > 0

    def test_distances_map(self):
        index = ShortcutIndex()
        index.put(Shortcut(1, 2, 7, 3.5))
        assert index.distances_of_rnet(7) == {(1, 2): 3.5}

    def test_reduced_cache_invalidation(self):
        index = ShortcutIndex()
        index.put(Shortcut(1, 2, 0, 1.0))
        index.put(Shortcut(2, 3, 0, 1.0))
        index.put(Shortcut(1, 3, 0, 2.0))
        assert len(index.stored_of_rnet(0)) == 2
        index.put(Shortcut(1, 3, 0, 1.5))  # now a strict improvement
        assert len(index.stored_of_rnet(0)) == 3
