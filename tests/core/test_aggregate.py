"""Aggregate kNN: equivalence with brute force across aggregates."""

import math
import random

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.framework import ROAD
from repro.graph.shortest_path import dijkstra_distances
from repro.objects.model import ObjectSet, SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import Predicate
from tests.conftest import random_connected_network
from tests.oracle import assert_same_result

AGGS = {"sum": sum, "max": max, "min": min}


def test_aggregate_registries_agree():
    """queries.types can't import core, so pin the two registries here."""
    from repro.core.aggregate import AGGREGATES
    from repro.queries.types import AGGREGATE_FUNCTIONS

    assert tuple(AGGREGATES) == AGGREGATE_FUNCTIONS


def brute_aggregate(network, objects, query_nodes, k, agg, predicate=None):
    """Oracle: full Dijkstra from every query node."""
    combine = AGGS[agg]
    per_node = [
        dijkstra_distances(network.neighbours, q) for q in query_nodes
    ]
    out = []
    for obj in objects:
        if predicate is not None and not predicate.matches(obj):
            continue
        u, v = obj.edge
        edge_distance = network.edge_distance(u, v)
        values = []
        for dist in per_node:
            candidates = [
                dist[n] + obj.offset_from(n, edge_distance)
                for n in (u, v)
                if n in dist
            ]
            values.append(min(candidates) if candidates else math.inf)
        value = combine(values)
        if math.isfinite(value):
            out.append((value, obj.object_id))
    out.sort()
    return out[:k]


@pytest.fixture
def built(medium_grid):
    objects = place_uniform(
        medium_grid, 14, seed=5, attr_choices={"type": ["a", "b"]}
    )
    road = ROAD.build(medium_grid, levels=3, fanout=4)
    road.attach_objects(objects)
    return medium_grid, objects, road


class TestAggregateKnn:
    @pytest.mark.parametrize("agg", ["sum", "max", "min"])
    def test_matches_brute_force(self, built, agg):
        net, objects, road = built
        query_nodes = [0, 55, 99]
        got = road.aggregate_knn(query_nodes, 4, agg)
        expected = brute_aggregate(net, objects, query_nodes, 4, agg)
        assert [e.object_id for e in got] == [i for _, i in expected]
        for entry, (value, _) in zip(got, expected):
            assert entry.distance == pytest.approx(value)

    def test_single_query_node_equals_knn(self, built):
        net, objects, road = built
        plain = road.knn(42, 5)
        for agg in ("sum", "max", "min"):
            aggregated = road.aggregate_knn([42], 5, agg)
            assert [e.object_id for e in aggregated] == [
                e.object_id for e in plain
            ]

    def test_with_predicate(self, built):
        net, objects, road = built
        pred = Predicate.of(type="a")
        got = road.aggregate_knn([0, 99], 3, "sum", pred)
        expected = brute_aggregate(net, objects, [0, 99], 3, "sum", pred)
        assert [e.object_id for e in got] == [i for _, i in expected]

    def test_duplicate_query_nodes(self, built):
        net, objects, road = built
        got = road.aggregate_knn([50, 50], 3, "sum")
        plain = road.knn(50, 3)
        assert [e.object_id for e in got] == [e.object_id for e in plain]
        for pair, single in zip(got, plain):
            assert pair.distance == pytest.approx(2 * single.distance)

    def test_k_exceeds_objects(self, built):
        net, objects, road = built
        got = road.aggregate_knn([0, 99], 100, "max")
        assert len(got) == len(objects)

    def test_results_sorted(self, built):
        _, _, road = built
        got = road.aggregate_knn([0, 44, 99], 6, "sum")
        values = [e.distance for e in got]
        assert values == sorted(values)

    def test_invalid_inputs(self, built):
        _, _, road = built
        with pytest.raises(ValueError):
            road.aggregate_knn([0], 0, "sum")
        with pytest.raises(ValueError):
            road.aggregate_knn([], 1, "sum")
        with pytest.raises(ValueError):
            road.aggregate_knn([0], 1, "median")

    def test_unreachable_component_excluded_for_sum(self):
        from repro.graph.network import RoadNetwork

        net = RoadNetwork()
        for i, (x, y) in enumerate([(0, 0), (1, 0), (5, 0), (6, 0)]):
            net.add_node(i, x, y)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        road = ROAD.build(net, levels=1, fanout=2)
        road.attach_objects(
            ObjectSet(
                [SpatialObject(1, (0, 1), 0.5), SpatialObject(2, (2, 3), 0.5)]
            )
        )
        got = road.aggregate_knn([0, 2], 5, "sum")
        assert got == []  # neither object reachable from both components
        got_min = road.aggregate_knn([0, 2], 5, "min")
        assert sorted(e.object_id for e in got_min) == [1, 2]


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    agg=st.sampled_from(["sum", "max", "min"]),
)
@example(seed=203, agg="sum")  # three objects tie exactly at the k-boundary
def test_aggregate_property(seed, agg):
    """Property: lockstep aggregation equals brute force on random inputs."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(12, 40), rnd.randint(0, 20))
    objects = ObjectSet()
    edges = sorted((u, v) for u, v, _ in network.edges())
    for object_id in range(rnd.randint(1, 8)):
        u, v = edges[rnd.randrange(len(edges))]
        objects.add(
            SpatialObject(object_id, (u, v), rnd.uniform(0, network.edge_distance(u, v)))
        )
    road = ROAD.build(network, levels=2, fanout=4)
    road.attach_objects(objects)
    query_nodes = [
        rnd.randrange(network.num_nodes) for _ in range(rnd.randint(1, 3))
    ]
    k = rnd.randint(1, 4)
    got = road.aggregate_knn(query_nodes, k, agg)
    # The compiled path replays the charged expansions push-for-push, so
    # aggregate answers are byte-identical (not merely tie-equivalent).
    assert road.freeze().aggregate_knn(query_nodes, k, agg) == got
    expected = brute_aggregate(network, objects, query_nodes, k, agg)
    # Tie-tolerant: equal aggregate values may cut differently at the
    # k-boundary (the termination test stops at the first k certainties).
    assert_same_result(got, expected)
