"""Index persistence: save/load round-trips."""

import pytest

from repro.core.framework import ROAD
from repro.core.serialize import SerializeError, load_road, save_road
from repro.objects.placement import place_uniform
from repro.queries.types import Predicate
from tests.oracle import assert_same_result, brute_knn


@pytest.fixture
def saved(tmp_path, medium_grid):
    objects = place_uniform(
        medium_grid, 15, seed=3, attr_choices={"type": ["a", "b"]}
    )
    road = ROAD.build(medium_grid, levels=3, fanout=4)
    road.attach_objects(objects)
    path = tmp_path / "city.roadidx"
    written = save_road(road, path)
    return road, objects, path, written


class TestRoundTrip:
    def test_file_written(self, saved):
        _, _, path, written = saved
        assert path.exists()
        assert written == path.stat().st_size > 100

    def test_network_restored(self, saved):
        original, _, path, _ = saved
        loaded = load_road(path)
        assert loaded.network.num_nodes == original.network.num_nodes
        assert loaded.network.num_edges == original.network.num_edges
        assert loaded.network.metric == original.network.metric
        for u, v, d in original.network.edges():
            assert loaded.network.edge_distance(u, v) == pytest.approx(d)

    def test_hierarchy_restored_and_valid(self, saved):
        original, _, path, _ = saved
        loaded = load_road(path)
        loaded.hierarchy.validate()
        assert loaded.hierarchy.num_levels == original.hierarchy.num_levels
        assert len(list(loaded.hierarchy.rnets())) == len(
            list(original.hierarchy.rnets())
        )
        for rnet in original.hierarchy.rnets():
            twin = loaded.hierarchy.rnet(rnet.rnet_id)
            assert twin.edges == rnet.edges
            assert twin.border == rnet.border

    def test_shortcuts_restored(self, saved):
        original, _, path, _ = saved
        loaded = load_road(path)
        assert loaded.shortcuts.total() == original.shortcuts.total()
        for rnet in original.hierarchy.rnets():
            assert loaded.shortcuts.distances_of_rnet(
                rnet.rnet_id
            ) == pytest.approx(
                original.shortcuts.distances_of_rnet(rnet.rnet_id)
            )

    def test_objects_restored(self, saved):
        original, objects, path, _ = saved
        loaded = load_road(path)
        twin = loaded.directory().objects
        assert sorted(twin.ids()) == sorted(objects.ids())
        for obj in objects:
            copy = twin.get(obj.object_id)
            assert copy.edge == obj.edge
            assert copy.delta == pytest.approx(obj.delta)
            assert copy.attrs == obj.attrs

    def test_queries_identical_after_reload(self, saved):
        original, objects, path, _ = saved
        loaded = load_road(path)
        for nq in (0, 33, 66, 99):
            assert_same_result(
                loaded.knn(nq, 5), brute_knn(loaded.network, objects, nq, 5)
            )
            plain = [(e.object_id, round(e.distance, 9)) for e in original.knn(nq, 5)]
            again = [(e.object_id, round(e.distance, 9)) for e in loaded.knn(nq, 5)]
            assert plain == again

    def test_predicates_work_after_reload(self, saved):
        _, objects, path, _ = saved
        loaded = load_road(path)
        pred = Predicate.of(type="a")
        got = loaded.knn(10, 3, pred)
        assert_same_result(got, brute_knn(loaded.network, objects, 10, 3, pred))

    def test_maintenance_works_after_reload(self, saved):
        _, _, path, _ = saved
        loaded = load_road(path)
        u, v, d = next(loaded.network.edges())
        loaded.update_edge_distance(u, v, d * 4)
        directory = loaded.directory()
        assert_same_result(
            loaded.knn(0, 4),
            brute_knn(loaded.network, directory.objects, 0, 4),
        )


class TestEdgeCases:
    def test_no_directories(self, tmp_path, small_grid):
        road = ROAD.build(small_grid, levels=2, fanout=4)
        path = tmp_path / "bare.roadidx"
        save_road(road, path)
        loaded = load_road(path)
        assert loaded.directory_names == []
        loaded.hierarchy.validate()

    def test_multiple_directories(self, tmp_path, small_grid):
        road = ROAD.build(small_grid, levels=2, fanout=4)
        road.attach_objects(place_uniform(small_grid, 4, seed=1), name="a")
        road.attach_objects(place_uniform(small_grid, 6, seed=2), name="b")
        path = tmp_path / "multi.roadidx"
        save_road(road, path)
        loaded = load_road(path)
        assert sorted(loaded.directory_names) == ["a", "b"]
        assert loaded.directory("a").object_count == 4
        assert loaded.directory("b").object_count == 6

    def test_reduce_flag_round_trips(self, tmp_path, small_grid):
        road = ROAD.build(small_grid, levels=2, reduce_shortcuts=False)
        path = tmp_path / "full.roadidx"
        save_road(road, path)
        assert load_road(path).shortcuts.reduce is False

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.roadidx"
        path.write_bytes(b"NOTANIDX" + b"\x00" * 64)
        with pytest.raises(SerializeError):
            load_road(path)

    def test_custom_buffer_pages(self, saved):
        _, _, path, _ = saved
        loaded = load_road(path, buffer_pages=7)
        assert loaded.pager._buffer.capacity == 7
