"""Object abstracts: no false negatives, update semantics, sizes."""

import pytest

from repro.core.object_abstract import (
    BloomAbstract,
    CountingAbstract,
    ExactAbstract,
    SignatureAbstract,
    bloom_abstract,
    counting_abstract,
    exact_abstract,
    signature_abstract,
)
from repro.objects.model import SpatialObject
from repro.queries.types import ANY, Predicate


def obj(object_id=1, **attrs):
    return SpatialObject(object_id, (1, 2), 0.5, attrs)


ALL_FACTORIES = [
    exact_abstract,
    counting_abstract,
    bloom_abstract(),
    signature_abstract(),
]


@pytest.mark.parametrize("factory", ALL_FACTORIES)
class TestCommonContract:
    def test_empty_abstract_contains_nothing(self, factory):
        abstract = factory()
        assert abstract.count == 0
        assert not abstract.may_contain(ANY)
        assert not abstract.may_contain(Predicate.of(type="hotel"))

    def test_added_object_always_findable(self, factory):
        abstract = factory()
        abstract.add(obj(type="hotel"))
        assert abstract.count == 1
        assert abstract.may_contain(ANY)
        assert abstract.may_contain(Predicate.of(type="hotel"))

    def test_multiple_objects_counted(self, factory):
        abstract = factory()
        abstract.add(obj(1, type="hotel"))
        abstract.add(obj(2, type="fuel"))
        assert abstract.count == 2
        assert abstract.may_contain(Predicate.of(type="hotel"))
        assert abstract.may_contain(Predicate.of(type="fuel"))

    def test_size_bytes_positive(self, factory):
        abstract = factory()
        abstract.add(obj(type="hotel"))
        assert abstract.size_bytes > 0


class TestExactAbstract:
    def test_wrong_value_pruned(self):
        abstract = ExactAbstract()
        abstract.add(obj(type="hotel"))
        assert not abstract.may_contain(Predicate.of(type="fuel"))
        assert not abstract.may_contain(Predicate.of(stars="5"))

    def test_remove_reverts_counts(self):
        abstract = ExactAbstract()
        o = obj(type="hotel")
        abstract.add(o)
        assert abstract.remove(o)
        assert abstract.count == 0
        assert not abstract.may_contain(Predicate.of(type="hotel"))

    def test_remove_keeps_remaining_values(self):
        abstract = ExactAbstract()
        a, b = obj(1, type="hotel"), obj(2, type="hotel")
        abstract.add(a)
        abstract.add(b)
        abstract.remove(a)
        assert abstract.may_contain(Predicate.of(type="hotel"))

    def test_remove_from_empty_requests_rebuild(self):
        assert not ExactAbstract().remove(obj())

    def test_multi_attribute_conjunction_conservative(self):
        abstract = ExactAbstract()
        abstract.add(obj(1, type="hotel", city="SF"))
        abstract.add(obj(2, type="fuel", city="LA"))
        # No single object is (hotel, LA), but per-value counts cannot rule
        # it out: must answer "maybe" (no false negatives, possible FP).
        assert abstract.may_contain(Predicate.of(type="hotel", city="LA"))
        assert not abstract.may_contain(Predicate.of(type="bank"))

    def test_size_grows_with_distinct_values(self):
        abstract = ExactAbstract()
        abstract.add(obj(1, type="hotel"))
        small = abstract.size_bytes
        abstract.add(obj(2, type="fuel"))
        assert abstract.size_bytes > small


class TestCountingAbstract:
    def test_ignores_attributes(self):
        abstract = CountingAbstract()
        abstract.add(obj(type="hotel"))
        assert abstract.may_contain(Predicate.of(type="fuel"))  # conservative

    def test_remove(self):
        abstract = CountingAbstract()
        abstract.add(obj())
        assert abstract.remove(obj())
        assert abstract.count == 0
        assert not abstract.remove(obj())

    def test_fixed_size(self):
        abstract = CountingAbstract()
        before = abstract.size_bytes
        for i in range(10):
            abstract.add(obj(i, type=f"t{i}"))
        assert abstract.size_bytes == before


class TestFixedSizeAbstracts:
    @pytest.mark.parametrize("cls", [BloomAbstract, SignatureAbstract])
    def test_remove_requests_rebuild(self, cls):
        abstract = cls()
        o = obj(type="hotel")
        abstract.add(o)
        assert not abstract.remove(o)

    def test_bloom_prunes_unseen_values(self):
        abstract = BloomAbstract(num_bits=512)
        abstract.add(obj(type="hotel"))
        misses = sum(
            not abstract.may_contain(Predicate.of(type=f"value-{i}"))
            for i in range(50)
        )
        assert misses > 40

    def test_signature_prunes_unseen_values(self):
        abstract = SignatureAbstract()
        abstract.add(obj(type="hotel"))
        misses = sum(
            not abstract.may_contain(Predicate.of(type=f"value-{i}"))
            for i in range(50)
        )
        assert misses > 40

    def test_bloom_size_fixed(self):
        abstract = BloomAbstract(num_bits=256)
        before = abstract.size_bytes
        for i in range(20):
            abstract.add(obj(i, type=f"t{i}"))
        assert abstract.size_bytes == before

    def test_factories_share_signature_scheme(self):
        factory = signature_abstract()
        a, b = factory(), factory()
        assert a._signature.scheme is b._signature.scheme
