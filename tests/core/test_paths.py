"""Path materialisation: shortcut expansion and routed queries."""

import pytest

from repro.core.framework import ROAD
from repro.core.paths import PathError, PathTracer, expand_shortcut
from repro.core.rnet import RnetHierarchy
from repro.core.shortcuts import build_shortcuts
from repro.graph.generators import chain_network
from repro.graph.shortest_path import network_distance
from repro.objects.placement import place_uniform


@pytest.fixture
def built(medium_grid):
    from repro.partition.hierarchy import build_partition_tree

    tree = build_partition_tree(medium_grid, levels=3, fanout=4)
    hierarchy = RnetHierarchy(medium_grid, tree)
    index = build_shortcuts(medium_grid, hierarchy)
    return medium_grid, hierarchy, index


class TestExpandShortcut:
    def test_leaf_shortcuts_expand_to_their_hops(self, built):
        net, hierarchy, index = built
        leaf = next(l for l in hierarchy.leaves() if index.of_rnet(l.rnet_id))
        shortcut = index.of_rnet(leaf.rnet_id)[0]
        path = expand_shortcut(hierarchy, index, shortcut)
        assert path == [shortcut.source, *shortcut.via, shortcut.target]

    def test_expanded_path_is_physically_connected(self, built):
        net, hierarchy, index = built
        for rnet in hierarchy.at_level(1):
            for shortcut in index.of_rnet(rnet.rnet_id)[:5]:
                path = expand_shortcut(hierarchy, index, shortcut)
                assert path[0] == shortcut.source
                assert path[-1] == shortcut.target
                for a, b in zip(path, path[1:]):
                    assert net.has_edge(a, b), f"({a},{b}) missing"

    def test_expanded_length_equals_shortcut_distance(self, built):
        net, hierarchy, index = built
        checked = 0
        for rnet in hierarchy.at_level(1):
            for shortcut in index.of_rnet(rnet.rnet_id)[:5]:
                path = expand_shortcut(hierarchy, index, shortcut)
                total = sum(
                    net.edge_distance(a, b) for a, b in zip(path, path[1:])
                )
                assert total == pytest.approx(shortcut.distance)
                checked += 1
        assert checked > 0

    def test_chain_expansion_matches_figure8(self):
        """On the chain, every shortcut expands to the consecutive walk."""
        chain = chain_network(13)
        from repro.partition.hierarchy import build_partition_tree

        tree = build_partition_tree(chain, levels=2, fanout=2)
        hierarchy = RnetHierarchy(chain, tree)
        index = build_shortcuts(chain, hierarchy)
        for rnet in hierarchy.rnets():
            for shortcut in index.of_rnet(rnet.rnet_id):
                path = expand_shortcut(hierarchy, index, shortcut)
                step = 1 if shortcut.target > shortcut.source else -1
                assert path == list(
                    range(shortcut.source, shortcut.target + step, step)
                )


class TestRoutedQueries:
    @pytest.fixture
    def road(self, medium_grid):
        road = ROAD.build(medium_grid, levels=3, fanout=4)
        road.attach_objects(place_uniform(medium_grid, 12, seed=4))
        return road

    def test_routed_knn_distances_match_plain_knn(self, road):
        plain = road.knn(0, 5)
        routed = road.knn_routed(0, 5)
        assert [r.entry for r in routed] == plain

    def test_routes_are_real_shortest_paths(self, road):
        net = road.network
        for result in road.knn_routed(0, 5):
            path = result.path
            assert path[0] == 0
            for a, b in zip(path, path[1:]):
                assert net.has_edge(a, b)
            walked = sum(
                net.edge_distance(a, b) for a, b in zip(path, path[1:])
            )
            assert walked + result.approach == pytest.approx(
                result.entry.distance
            )
            # the walked prefix must itself be a shortest path
            assert walked == pytest.approx(network_distance(net, 0, path[-1]))

    def test_routed_range(self, road):
        routed = road.range_routed(50, 400.0)
        assert routed  # something within 400m of the grid centre
        for result in routed:
            assert result.entry.distance <= 400.0 + 1e-9
            assert result.path[0] == 50

    def test_route_from_adjacent_node(self, road):
        """Query right next to the object: trivial path."""
        obj = next(iter(road.directory().objects))
        u = obj.edge[0]
        routed = road.knn_routed(u, 1)
        assert routed[0].path[0] == u

    def test_routes_after_maintenance(self, road):
        net = road.network
        u, v, d = next(net.edges())
        road.update_edge_distance(u, v, d * 6)
        for result in road.knn_routed(99, 3):
            walked = sum(
                net.edge_distance(a, b)
                for a, b in zip(result.path, result.path[1:])
            )
            assert walked + result.approach == pytest.approx(
                result.entry.distance
            )


class TestTracerErrors:
    def test_unsettled_object_raises(self, built):
        net, hierarchy, index = built
        from repro.core.paths import object_path

        with pytest.raises(PathError):
            object_path(PathTracer(), hierarchy, index, 0, 99)

    def test_unsettled_node_raises(self, built):
        net, hierarchy, index = built
        from repro.core.paths import node_path

        with pytest.raises(PathError):
            node_path(PathTracer(), hierarchy, index, 0, 57)

    def test_source_path_is_trivial(self, built):
        net, hierarchy, index = built
        from repro.core.paths import node_path

        assert node_path(PathTracer(), hierarchy, index, 3, 3) == [3]
