"""Array-backend contract tests that run without numpy installed.

The no-numpy CI leg executes exactly this module: it must import and pass
in an environment with only the stdlib, proving that the core library —
network model, ROAD build, FrozenRoad with the ``list`` and ``compact``
backends, and the patch lifecycle — has no hard numpy dependency, and
that ``backend="numpy"`` degrades to a clear ImportError rather than a
crash.  (With numpy installed, the same parity assertions additionally
cover the numpy backend via :func:`installed_backends`.)

Fixtures here avoid the numpy-seeded generators on purpose: networks come
from :func:`tests.conftest.random_connected_network` (stdlib ``random``)
and objects are placed by hand.
"""

import random
import sys

import pytest

from repro.core.framework import ROAD
from repro.core.frozen_backends import (
    BACKENDS,
    default_backend,
    get_backend,
    installed_backends,
    resolve_backend,
)
from repro.core.search import SearchStats
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import Predicate
from tests.conftest import random_connected_network


def _numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


@pytest.fixture
def built():
    rnd = random.Random(7)
    network = random_connected_network(rnd, 40, 12)
    objects = ObjectSet()
    edges = sorted((u, v) for u, v, _ in network.edges())
    for object_id in range(10):
        u, v = edges[rnd.randrange(len(edges))]
        delta = rnd.uniform(0.0, network.edge_distance(u, v))
        attrs = {"type": rnd.choice(["a", "b"])}
        objects.add(SpatialObject(object_id, (u, v), delta, attrs))
    road = ROAD.build(network, levels=2, fanout=4)
    road.attach_objects(objects)
    return network, road


class TestRegistry:
    def test_stdlib_backends_always_available(self):
        available = installed_backends()
        assert available[:2] == ("list", "compact")
        assert set(available) <= set(BACKENDS)

    def test_numpy_listed_iff_importable(self):
        assert ("numpy" in installed_backends()) == _numpy_available()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="arrow"):
            get_backend("arrow")

    def test_missing_numpy_raises_clear_import_error(self, monkeypatch):
        # Hide numpy if present; a plain no-numpy env takes the same path.
        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.raises(ImportError) as exc_info:
            get_backend("numpy")
        message = str(exc_info.value)
        assert "road-repro[numpy]" in message
        assert "compact" in message  # points at the stdlib fallback

    def test_default_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "list"
        monkeypatch.setenv("REPRO_BACKEND", "compact")
        assert default_backend() == "compact"
        assert resolve_backend(None).name == "compact"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError):
            default_backend()

    def test_resolve_backend_passthrough(self):
        instance = get_backend("compact")
        assert resolve_backend(instance) is instance
        assert resolve_backend("list").name == "list"

    def test_backend_names_case_insensitive(self):
        # every config surface (env, CLI, freeze kwarg) accepts any case
        assert get_backend("Compact").name == "compact"
        assert resolve_backend("LIST").name == "list"


class TestStdlibParity:
    def test_backends_serve_byte_identical(self, built):
        network, road = built
        reference = road.freeze(backend="list")
        pred = Predicate.of(type="a")
        for name in installed_backends():
            frozen = road.freeze(backend=name)
            assert frozen.backend == name
            for node in range(0, network.num_nodes, 5):
                s_ref, s_got = SearchStats(), SearchStats()
                want = reference.knn(node, 4, stats=s_ref)
                got = frozen.knn(node, 4, stats=s_got)
                assert got == want, name
                assert s_got == s_ref, name
                assert frozen.range(node, 8.0, pred) == reference.range(
                    node, 8.0, pred
                ), name
                assert frozen.aggregate_knn(
                    [node, (node + 7) % network.num_nodes], 3
                ) == reference.aggregate_knn(
                    [node, (node + 7) % network.num_nodes], 3
                ), name

    def test_matches_charged_path(self, built):
        network, road = built
        for name in installed_backends():
            frozen = road.freeze(backend=name)
            for node in range(0, network.num_nodes, 7):
                assert frozen.knn(node, 3) == road.knn(node, 3), name

    def test_patch_lifecycle_per_backend(self, built):
        network, road = built
        snapshots = {
            name: road.freeze(backend=name) for name in installed_backends()
        }
        edges = sorted((u, v) for u, v, _ in network.edges())
        rnd = random.Random(3)
        # weight churn (slice-assigned span rewrites) ...
        for _ in range(3):
            u, v = edges[rnd.randrange(len(edges))]
            report = road.update_edge_distance(
                u, v, network.edge_distance(u, v) * rnd.choice([0.5, 2.0])
            )
            for frozen in snapshots.values():
                frozen.apply(report)
        # ... and object churn (size-changing splices)
        u, v = edges[0]
        new_id = road.directory().objects.next_id()
        report = road.insert_object(
            SpatialObject(new_id, (u, v), 0.0, {"type": "a"})
        )
        for frozen in snapshots.values():
            frozen.apply(report)
        report = road.delete_object(new_id)
        for frozen in snapshots.values():
            frozen.apply(report)
        fresh = road.freeze(backend="list")
        for name, frozen in snapshots.items():
            for node in range(0, network.num_nodes, 6):
                assert frozen.knn(node, 4) == fresh.knn(node, 4), name

    def test_memory_stats_compact_vs_list(self, built):
        _, road = built
        stats = {
            name: road.freeze(backend=name).memory_stats()
            for name in ("list", "compact")
        }
        assert stats["list"]["payload_bytes"] == stats["compact"]["payload_bytes"]
        assert stats["compact"]["total_bytes"] < stats["list"]["total_bytes"] / 2
        # typed buffers sit within ~2x of the 8 B/element payload ideal
        assert stats["compact"]["total_bytes"] < 2 * stats["compact"]["payload_bytes"]
