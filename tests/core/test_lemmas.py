"""Direct checks of the paper's lemmas (Section 3.3)."""


import pytest

from repro.core.association_directory import AssociationDirectory
from repro.core.rnet import RnetHierarchy
from repro.core.shortcuts import build_shortcuts
from repro.graph.network import edge_key
from repro.objects.placement import place_uniform
from repro.partition.hierarchy import build_partition_tree
from repro.storage.pager import PageManager


@pytest.fixture
def setting(medium_grid):
    tree = build_partition_tree(medium_grid, levels=3, fanout=4)
    hierarchy = RnetHierarchy(medium_grid, tree)
    return medium_grid, hierarchy


class TestLemma1:
    """O(R) = union of the children's abstracts; finest = union over edges."""

    def test_parent_abstract_covers_children(self, setting):
        net, hierarchy = setting
        objects = place_uniform(net, 25, seed=3)
        ad = AssociationDirectory(
            PageManager(buffer_pages=50), net, hierarchy, objects
        )
        for rnet in hierarchy.rnets():
            if rnet.is_leaf:
                continue
            parent_abs = ad.rnet_abstract(rnet.rnet_id)
            child_total = sum(
                (ad.rnet_abstract(c) or _empty()).count
                for c in rnet.children
            )
            parent_count = parent_abs.count if parent_abs else 0
            assert parent_count == child_total

    def test_finest_abstract_counts_edge_objects(self, setting):
        net, hierarchy = setting
        objects = place_uniform(net, 25, seed=3)
        ad = AssociationDirectory(
            PageManager(buffer_pages=50), net, hierarchy, objects
        )
        for leaf in hierarchy.leaves():
            expected = sum(
                len(objects.on_edge(u, v)) for u, v in leaf.edges
            )
            abstract = ad.rnet_abstract(leaf.rnet_id)
            assert (abstract.count if abstract else 0) == expected

    def test_root_abstract_counts_everything(self, setting):
        net, hierarchy = setting
        objects = place_uniform(net, 25, seed=3)
        ad = AssociationDirectory(
            PageManager(buffer_pages=50), net, hierarchy, objects
        )
        assert ad.rnet_abstract(hierarchy.root.rnet_id).count == 25


class TestLemma3:
    """A shortcut crossing another Rnet's edge implies that Rnet has a
    matching shortcut covering the same edge at no greater distance."""

    def test_sibling_shortcut_containment(self, setting):
        from repro.core.paths import expand_shortcut

        net, hierarchy = setting
        index = build_shortcuts(net, hierarchy)
        leaves_of_edge = {}
        for leaf in hierarchy.leaves():
            for edge in leaf.edges:
                leaves_of_edge[edge] = leaf

        checked = 0
        for rnet in hierarchy.at_level(1):
            for shortcut in index.of_rnet(rnet.rnet_id)[:10]:
                path = expand_shortcut(hierarchy, index, shortcut)
                for a, b in zip(path, path[1:]):
                    leaf = leaves_of_edge[edge_key(a, b)]
                    # The edge's own finest Rnet must have a shortcut whose
                    # expansion also covers (a, b) — unless both endpoints
                    # of the hop are interior detail of that very leaf pair.
                    covering = [
                        s
                        for s in index.of_rnet(leaf.rnet_id)
                        for hops in [expand_shortcut(hierarchy, index, s)]
                        if any(
                            edge_key(x, y) == edge_key(a, b)
                            for x, y in zip(hops, hops[1:])
                        )
                    ]
                    if covering:
                        checked += 1
        assert checked > 0  # the relationship is exercised, not vacuous


class TestLemma2Consistency:
    """Level-i shortcut distances are realisable through level-i+1 sets."""

    def test_upper_shortcuts_compose_from_child_distances(self, setting):
        net, hierarchy = setting
        index = build_shortcuts(net, hierarchy)
        for rnet in hierarchy.at_level(1):
            child_pairs = {}
            for child_id in rnet.children:
                for s in index.of_rnet(child_id):
                    key = (s.source, s.target)
                    best = child_pairs.get(key)
                    if best is None or s.distance < best:
                        child_pairs[key] = s.distance
            for s in index.of_rnet(rnet.rnet_id)[:15]:
                hops = [s.source, *s.via, s.target]
                total = 0.0
                for a, b in zip(hops, hops[1:]):
                    assert (a, b) in child_pairs, "via hop not a child shortcut"
                    total += child_pairs[(a, b)]
                assert total == pytest.approx(s.distance)


def _empty():
    class _Zero:
        count = 0

    return _Zero()
