"""Maintenance (Section 5): filter-and-refresh, structure changes."""

import pytest

from repro.core.framework import ROAD
from repro.core.maintenance import MaintenanceError
from repro.objects.placement import place_uniform
from tests.oracle import assert_same_result, brute_knn


@pytest.fixture
def built(medium_grid):
    objects = place_uniform(medium_grid, 12, seed=6)
    road = ROAD.build(medium_grid, levels=3, fanout=4)
    road.attach_objects(objects)
    return medium_grid, objects, road


def check_queries(net, objects, road, nodes=(0, 33, 66, 99)):
    # Read objects back from the directory: edge re-weighting rescales
    # offsets, so the originally placed set may be stale.
    live = road.directory().objects
    for nq in nodes:
        assert_same_result(road.knn(nq, 4), brute_knn(net, live, nq, 4))


class TestEdgeDistanceChange:
    def test_increase_keeps_queries_correct(self, built):
        net, objects, road = built
        u, v, d = next(net.edges())
        road.update_edge_distance(u, v, d * 10)
        check_queries(net, objects, road)

    def test_decrease_keeps_queries_correct(self, built):
        net, objects, road = built
        u, v, d = next(net.edges())
        road.update_edge_distance(u, v, d / 10)
        check_queries(net, objects, road)

    def test_many_random_changes(self, built, rng):
        net, objects, road = built
        edges = list(net.edges())
        for _ in range(10):
            u, v, _ = edges[rng.randrange(len(edges))]
            factor = rng.choice([0.25, 0.5, 2.0, 4.0])
            road.update_edge_distance(u, v, net.edge_distance(u, v) * factor)
        check_queries(net, objects, road)

    def test_report_counts(self, built):
        net, objects, road = built
        u, v, d = next(net.edges())
        report = road.update_edge_distance(u, v, d * 5)
        assert report.filtered_rnets >= 1
        assert report.levels_touched >= 1

    def test_unaffecting_change_terminates_early(self, built):
        """Increasing an edge no shortcut covers stops after the filter."""
        net, objects, road = built
        # Find an interior edge (both endpoints interior to one leaf) whose
        # increase cannot affect any border-to-border shortcut... such an
        # edge may still lie on shortcut paths, so search for a change whose
        # filter comes up empty.
        found_early_exit = False
        for u, v, d in list(net.edges())[:40]:
            report = road.update_edge_distance(u, v, d * 1.0001)
            if report.refreshed_rnets == 0:
                found_early_exit = True
                break
        # At least the report structure must be consistent even if every
        # edge is covered by some shortcut on this network.
        assert report.filtered_rnets >= 1
        check_queries(net, objects, road)

    def test_restore_original_distance(self, built):
        net, objects, road = built
        u, v, d = next(net.edges())
        road.update_edge_distance(u, v, d * 7)
        road.update_edge_distance(u, v, d)
        check_queries(net, objects, road)

    def test_non_positive_distance_rejected(self, built):
        _, _, road = built
        u, v, _ = next(road.network.edges())
        with pytest.raises(MaintenanceError):
            road.update_edge_distance(u, v, 0.0)

    def test_missing_edge_rejected(self, built):
        _, _, road = built
        from repro.graph.network import NetworkError

        with pytest.raises(NetworkError):
            road.update_edge_distance(0, 99, 1.0)


class TestStructureChange:
    def test_add_edge_same_rnet(self, built):
        net, objects, road = built
        # two non-adjacent nodes inside the same leaf Rnet
        leaf = next(l for l in road.hierarchy.leaves() if len(l.nodes) > 3)
        nodes = sorted(leaf.nodes)
        pair = None
        for a in nodes:
            for b in nodes:
                if a < b and not net.has_edge(a, b):
                    pair = (a, b)
                    break
            if pair:
                break
        if pair is None:
            pytest.skip("leaf is a clique")
        road.add_edge(pair[0], pair[1], 1.0)
        road.hierarchy.validate()
        check_queries(net, objects, road)

    def test_add_edge_cross_rnet_promotes(self, built):
        net, objects, road = built
        leaves = [l for l in road.hierarchy.leaves() if l.nodes - l.border]
        a = next(iter(sorted(leaves[0].nodes - leaves[0].border)))
        b = next(
            n
            for leaf in leaves[1:]
            for n in sorted(leaf.nodes - leaf.border)
            if n != a and not net.has_edge(a, n)
        )
        report = road.add_edge(a, b, 42.0)
        assert report.promoted_borders
        road.hierarchy.validate()
        check_queries(net, objects, road)

    def test_remove_edge_demotes(self, built):
        net, objects, road = built
        # adding then removing a cross-Rnet edge must demote the promotion
        leaves = [l for l in road.hierarchy.leaves() if l.nodes - l.border]
        a = next(iter(sorted(leaves[0].nodes - leaves[0].border)))
        b = next(
            n
            for leaf in leaves[1:]
            for n in sorted(leaf.nodes - leaf.border)
            if n != a and not net.has_edge(a, n)
        )
        added = road.add_edge(a, b, 42.0)
        removed = road.remove_edge(a, b)
        assert set(removed.demoted_borders) >= set(added.promoted_borders)
        road.hierarchy.validate()
        check_queries(net, objects, road)

    def test_remove_edge_with_objects_refused(self, built):
        net, objects, road = built
        u, v = objects.get(objects.ids()[0]).edge
        with pytest.raises(MaintenanceError):
            road.remove_edge(u, v)

    def test_add_edge_with_new_node(self, built):
        net, objects, road = built
        new_node = 10_000
        report = road.add_edge(
            0, new_node, 5.0, coords={new_node: (-10.0, -10.0)}
        )
        assert net.has_node(new_node)
        road.hierarchy.validate()
        got = road.knn(new_node, 3)
        assert_same_result(got, brute_knn(net, objects, new_node, 3))

    def test_add_edge_new_node_without_coords_rejected(self, built):
        _, _, road = built
        with pytest.raises(MaintenanceError):
            road.add_edge(0, 10_000, 5.0)

    def test_infinity_style_delete_and_restore(self, built):
        """The Figure 16 experiment: remove an edge, then restore it."""
        net, objects, road = built
        for u, v, d in list(net.edges())[:5]:
            if objects.on_edge(u, v):
                continue
            net_copy = net.copy()
            net_copy.remove_edge(u, v)
            if not net_copy.connected():
                continue  # keep the network connected for the oracle
            road.remove_edge(u, v)
            check_queries(net, objects, road, nodes=(0, 50))
            road.add_edge(u, v, d)
            check_queries(net, objects, road, nodes=(0, 50))
            break


class TestObjectUpdatesThroughFacade:
    def test_insert_then_query(self, built):
        net, objects, road = built
        from repro.objects.model import SpatialObject

        u, v, d = next(net.edges())
        new_id = objects.next_id()
        road.insert_object(SpatialObject(new_id, (u, v), d / 2))
        got = road.knn(u, 1)
        assert got[0].object_id == new_id
        assert got[0].distance == pytest.approx(d / 2)

    def test_delete_then_query(self, built):
        net, objects, road = built
        victim = objects.ids()[0]
        road.delete_object(victim)
        for nq in (0, 99):
            got = road.knn(nq, len(objects.ids()) + 1)
            assert victim not in [e.object_id for e in got]

    def test_update_attrs_via_facade(self, built):
        net, objects, road = built
        from repro.queries.types import Predicate

        target = objects.ids()[0]
        road.update_object_attrs(target, {"type": "special"})
        got = road.knn(0, 1, Predicate.of(type="special"))
        assert [e.object_id for e in got] == [target]
