"""Rnet hierarchy: Definitions 1 & 4, border computation, mutation."""

import pytest

from repro.core.rnet import HierarchyError, RnetHierarchy
from repro.graph.generators import chain_network
from repro.graph.network import edge_key
from repro.partition.hierarchy import build_partition_tree


@pytest.fixture
def grid_hierarchy(medium_grid):
    tree = build_partition_tree(medium_grid, levels=2, fanout=4)
    return medium_grid, RnetHierarchy(medium_grid, tree)


@pytest.fixture
def chain_hierarchy():
    """Figure 8's setting: a 13-node chain, 3 Rnets x 2 sub-Rnets."""
    chain = chain_network(13)
    tree = build_partition_tree(chain, levels=2, fanout=2)
    return chain, RnetHierarchy(chain, tree)


class TestStructure:
    def test_root_covers_whole_network(self, grid_hierarchy):
        net, hier = grid_hierarchy
        assert len(hier.root.edges) == net.num_edges
        assert hier.root.level == 0
        assert hier.root.is_root

    def test_root_has_no_border(self, grid_hierarchy):
        _, hier = grid_hierarchy
        assert hier.root.border == set()

    def test_validates(self, grid_hierarchy):
        _, hier = grid_hierarchy
        hier.validate()

    def test_levels(self, grid_hierarchy):
        _, hier = grid_hierarchy
        assert hier.num_levels == 2
        assert len(hier.at_level(1)) == 4
        assert all(r.level == 1 for r in hier.at_level(1))

    def test_leaf_of_edge(self, grid_hierarchy):
        net, hier = grid_hierarchy
        for u, v, _ in list(net.edges())[:20]:
            leaf = hier.leaf_of_edge(u, v)
            assert leaf.is_leaf
            assert edge_key(u, v) in leaf.edges

    def test_leaf_of_missing_edge_raises(self, grid_hierarchy):
        _, hier = grid_hierarchy
        with pytest.raises(HierarchyError):
            hier.leaf_of_edge(0, 99)

    def test_ancestors_chain(self, grid_hierarchy):
        _, hier = grid_hierarchy
        leaf = hier.leaves()[0]
        chain = hier.ancestors(leaf.rnet_id)
        assert chain[0] is leaf
        assert chain[-1].is_root
        for child, parent in zip(chain, chain[1:]):
            assert child.parent == parent.rnet_id
            assert child.rnet_id in parent.children

    def test_unknown_rnet_raises(self, grid_hierarchy):
        _, hier = grid_hierarchy
        with pytest.raises(HierarchyError):
            hier.rnet(10_000)

    def test_border_nodes_have_external_edges(self, grid_hierarchy):
        net, hier = grid_hierarchy
        for rnet in hier.at_level(1):
            for node in rnet.border:
                external = [
                    nbr
                    for nbr, _ in net.neighbours(node)
                    if edge_key(node, nbr) not in rnet.edges
                ]
                assert external, f"border node {node} has no external edge"

    def test_interior_nodes_have_no_external_edges(self, grid_hierarchy):
        net, hier = grid_hierarchy
        for rnet in hier.at_level(1):
            for node in rnet.nodes - rnet.border:
                assert all(
                    edge_key(node, nbr) in rnet.edges
                    for nbr, _ in net.neighbours(node)
                )

    def test_chain_borders_match_figure8(self, chain_hierarchy):
        """On a 13-node chain split 3x2, borders are the cut points."""
        _, hier = chain_hierarchy
        level1_borders = set()
        for rnet in hier.at_level(1):
            level1_borders |= rnet.border
        # Chain cut into 2 at level 1 -> single shared cut node.
        assert len(level1_borders) == 1

    def test_rnets_containing_node(self, grid_hierarchy):
        _, hier = grid_hierarchy
        node = next(iter(hier.root.nodes))
        containing = hier.rnets_containing(node)
        assert containing[0].is_root
        assert all(node in r.nodes for r in containing)
        # Levels are non-decreasing (sorted top-down).
        levels = [r.level for r in containing]
        assert levels == sorted(levels)


class TestBorderRoots:
    def test_interior_node_has_no_roots(self, grid_hierarchy):
        _, hier = grid_hierarchy
        interior = None
        for leaf in hier.leaves():
            candidates = leaf.nodes - leaf.border
            if candidates:
                interior = next(iter(candidates))
                break
        assert interior is not None
        assert hier.border_roots(interior) == []

    def test_border_node_roots_are_bordered(self, grid_hierarchy):
        _, hier = grid_hierarchy
        border_node = next(iter(hier.at_level(1)[0].border))
        roots = hier.border_roots(border_node)
        assert roots
        for rnet in roots:
            assert border_node in rnet.border

    def test_roots_share_a_parent(self, grid_hierarchy):
        _, hier = grid_hierarchy
        for rnet in hier.at_level(1):
            for node in rnet.border:
                roots = hier.border_roots(node)
                parents = {r.parent for r in roots}
                assert len(parents) == 1

    def test_home_leaf_of_interior_node(self, grid_hierarchy):
        _, hier = grid_hierarchy
        for leaf in hier.leaves():
            for node in leaf.nodes - leaf.border:
                assert hier.home_leaf(node) is leaf

    def test_home_leaf_of_border_node_raises(self, grid_hierarchy):
        _, hier = grid_hierarchy
        border_node = next(iter(hier.at_level(1)[0].border))
        with pytest.raises(HierarchyError):
            hier.home_leaf(border_node)

    def test_is_border(self, grid_hierarchy):
        _, hier = grid_hierarchy
        rnet = hier.at_level(1)[0]
        border_node = next(iter(rnet.border))
        assert hier.is_border(border_node, rnet.rnet_id)
        interior = next(iter(rnet.nodes - rnet.border), None)
        if interior is not None:
            assert not hier.is_border(interior, rnet.rnet_id)


class TestMutation:
    def test_add_edge_updates_chain(self, grid_hierarchy):
        net, hier = grid_hierarchy
        net.add_edge(0, 55, 10.0)
        leaf = hier.add_edge(0, 55)
        assert edge_key(0, 55) in leaf.edges
        for rnet in hier.ancestors(leaf.rnet_id):
            assert edge_key(0, 55) in rnet.edges
        hier.validate()

    def test_add_then_remove_restores_validity(self, grid_hierarchy):
        net, hier = grid_hierarchy
        net.add_edge(0, 55, 10.0)
        hier.add_edge(0, 55)
        net.remove_edge(0, 55)
        hier.remove_edge(0, 55)
        hier.validate()

    def test_add_existing_edge_raises(self, grid_hierarchy):
        net, hier = grid_hierarchy
        u, v, _ = next(net.edges())
        with pytest.raises(HierarchyError):
            hier.add_edge(u, v)

    def test_add_unregistered_network_edge_required(self, grid_hierarchy):
        _, hier = grid_hierarchy
        with pytest.raises(HierarchyError):
            hier.add_edge(0, 55)  # edge not in network yet

    def test_remove_edge_still_in_network_raises(self, grid_hierarchy):
        net, hier = grid_hierarchy
        u, v, _ = next(net.edges())
        with pytest.raises(HierarchyError):
            hier.remove_edge(u, v)

    def test_cross_rnet_edge_promotes_border(self, grid_hierarchy):
        net, hier = grid_hierarchy
        # find two interior nodes in different leaves
        leaves = [l for l in hier.leaves() if l.nodes - l.border]
        a = next(iter(leaves[0].nodes - leaves[0].border))
        b = None
        for leaf in leaves[1:]:
            candidates = leaf.nodes - leaf.border - {a}
            for node in candidates:
                if not net.has_edge(a, node):
                    b = node
                    break
            if b is not None:
                break
        assert b is not None
        net.add_edge(a, b, 5.0)
        hier.add_edge(a, b)
        hier.validate()
        # One endpoint now borders the leaf that received the edge.
        assert any(
            b in r.border or a in r.border
            for r in hier.rnets_containing(a) + hier.rnets_containing(b)
            if not r.is_root
        )

    def test_stats_shape(self, grid_hierarchy):
        _, hier = grid_hierarchy
        stats = hier.stats()
        assert stats["levels"] == 2
        assert stats["leaves"] > 0
        assert stats["avg_border"] > 0
