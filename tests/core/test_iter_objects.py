"""Incremental object iteration (the substrate of aggregate queries)."""

import itertools

import pytest

from repro.core.framework import ROAD
from repro.core.search import SearchStats, iter_nearest_objects
from repro.objects.placement import place_uniform
from repro.queries.types import Predicate
from tests.oracle import brute_object_distances


@pytest.fixture
def built(medium_grid):
    objects = place_uniform(
        medium_grid, 12, seed=8, attr_choices={"type": ["a", "b"]}
    )
    road = ROAD.build(medium_grid, levels=3, fanout=4)
    road.attach_objects(objects)
    return medium_grid, objects, road


class TestIterNearestObjects:
    def test_yields_all_objects_in_distance_order(self, built):
        net, objects, road = built
        stream = list(
            iter_nearest_objects(road.overlay, road.directory(), 0)
        )
        expected = brute_object_distances(net, objects, 0)
        assert [oid for _, oid in stream] == [oid for _, oid in expected]
        for (got_d, _), (exp_d, _) in zip(stream, expected):
            assert got_d == pytest.approx(exp_d)

    def test_lazy_consumption_matches_knn(self, built):
        _, _, road = built
        it = iter_nearest_objects(road.overlay, road.directory(), 37)
        first_three = list(itertools.islice(it, 3))
        knn = road.knn(37, 3)
        assert [oid for _, oid in first_three] == [e.object_id for e in knn]

    def test_partial_pull_expands_partially(self, built):
        """Pulling one object must not explore the whole network."""
        _, _, road = built
        stats = SearchStats()
        it = iter_nearest_objects(
            road.overlay, road.directory(), 0, stats=stats
        )
        next(it)
        assert stats.nodes_popped < road.network.num_nodes / 2

    def test_predicate_filtering(self, built):
        net, objects, road = built
        pred = Predicate.of(type="a")
        stream = list(
            iter_nearest_objects(road.overlay, road.directory(), 10, pred)
        )
        expected = brute_object_distances(net, objects, 10, pred)
        assert [oid for _, oid in stream] == [oid for _, oid in expected]

    def test_exhaustion_on_empty_directory(self, medium_grid):
        from repro.objects.model import ObjectSet

        road = ROAD.build(medium_grid, levels=2, fanout=4)
        road.attach_objects(ObjectSet())
        stream = list(
            iter_nearest_objects(road.overlay, road.directory(), 0)
        )
        assert stream == []
