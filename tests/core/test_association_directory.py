"""Association Directory: Figure 7 semantics, object updates (Section 5.1)."""

import pytest

from repro.core.association_directory import AssociationDirectory, DirectoryError
from repro.core.object_abstract import bloom_abstract
from repro.core.rnet import RnetHierarchy
from repro.objects.model import ObjectSet, SpatialObject
from repro.objects.placement import place_uniform
from repro.partition.hierarchy import build_partition_tree
from repro.queries.types import ANY, Predicate
from repro.storage.pager import PageManager


@pytest.fixture
def setting(medium_grid):
    tree = build_partition_tree(medium_grid, levels=2, fanout=4)
    hierarchy = RnetHierarchy(medium_grid, tree)
    pager = PageManager(buffer_pages=50)
    return medium_grid, hierarchy, pager


def make_directory(setting, objects=None, **kwargs):
    net, hierarchy, pager = setting
    return AssociationDirectory(pager, net, hierarchy, objects, **kwargs)


def some_edge(net, index=0):
    return sorted((u, v) for u, v, _ in net.edges())[index]


class TestBuild:
    def test_objects_attached_to_both_endpoints(self, setting):
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        d = net.edge_distance(u, v)
        obj = SpatialObject(1, (u, v), d / 4)
        ad = make_directory(setting, ObjectSet([obj]))
        (got_u, delta_u), = ad.node_objects(u)
        (got_v, delta_v), = ad.node_objects(v)
        assert got_u.object_id == got_v.object_id == 1
        assert delta_u == pytest.approx(d / 4)
        assert delta_v == pytest.approx(3 * d / 4)

    def test_empty_nodes_absent(self, setting):
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        ad = make_directory(setting, ObjectSet([SpatialObject(1, (u, v), 0.0)]))
        far_node = max(net.node_ids())
        if far_node not in (u, v):
            assert ad.node_objects(far_node) == []

    def test_abstracts_along_ancestor_chain(self, setting):
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        ad = make_directory(setting, ObjectSet([SpatialObject(1, (u, v), 0.0)]))
        leaf = hierarchy.leaf_of_edge(u, v)
        for rnet in hierarchy.ancestors(leaf.rnet_id):
            assert ad.rnet_may_contain(rnet.rnet_id, ANY)

    def test_object_free_rnets_absent(self, setting):
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        ad = make_directory(setting, ObjectSet([SpatialObject(1, (u, v), 0.0)]))
        leaf = hierarchy.leaf_of_edge(u, v)
        chain_ids = {r.rnet_id for r in hierarchy.ancestors(leaf.rnet_id)}
        for rnet in hierarchy.rnets():
            if rnet.rnet_id not in chain_ids:
                assert ad.rnet_abstract(rnet.rnet_id) is None
                assert not ad.rnet_may_contain(rnet.rnet_id, ANY)

    def test_predicate_pruning(self, setting):
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        ad = make_directory(
            setting,
            ObjectSet([SpatialObject(1, (u, v), 0.0, {"type": "hotel"})]),
        )
        leaf = hierarchy.leaf_of_edge(u, v)
        assert ad.rnet_may_contain(leaf.rnet_id, Predicate.of(type="hotel"))
        assert not ad.rnet_may_contain(leaf.rnet_id, Predicate.of(type="fuel"))

    def test_insert_rejects_unknown_edge(self, setting):
        ad = make_directory(setting)
        with pytest.raises(DirectoryError):
            ad.insert(SpatialObject(1, (0, 99), 0.0))

    def test_insert_rejects_offset_beyond_edge(self, setting):
        net, _, _ = setting
        u, v = some_edge(net)
        too_far = net.edge_distance(u, v) * 2
        ad = make_directory(setting)
        with pytest.raises(DirectoryError):
            ad.insert(SpatialObject(1, (u, v), too_far))

    def test_bulk_build_from_placement(self, setting):
        net, _, _ = setting
        objects = place_uniform(net, 30, seed=5)
        ad = make_directory(setting, objects)
        assert ad.object_count == 30
        assert ad.size_bytes > 0
        assert ad.page_count > 0


class TestUpdates:
    def test_delete_detaches_everywhere(self, setting):
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        ad = make_directory(setting, ObjectSet([SpatialObject(1, (u, v), 0.0)]))
        removed = ad.delete(1)
        assert removed.object_id == 1
        assert ad.node_objects(u) == []
        assert ad.node_objects(v) == []
        leaf = hierarchy.leaf_of_edge(u, v)
        for rnet in hierarchy.ancestors(leaf.rnet_id):
            assert not ad.rnet_may_contain(rnet.rnet_id, ANY)

    def test_delete_keeps_siblings(self, setting):
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        ad = make_directory(
            setting,
            ObjectSet(
                [SpatialObject(1, (u, v), 0.0), SpatialObject(2, (u, v), 0.1)]
            ),
        )
        ad.delete(1)
        assert [o.object_id for o, _ in ad.node_objects(u)] == [2]
        leaf = hierarchy.leaf_of_edge(u, v)
        assert ad.rnet_may_contain(leaf.rnet_id, ANY)

    def test_delete_absent_raises(self, setting):
        ad = make_directory(setting)
        from repro.objects.model import ObjectError

        with pytest.raises(ObjectError):
            ad.delete(9)

    def test_update_attrs_changes_abstracts(self, setting):
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        ad = make_directory(
            setting,
            ObjectSet([SpatialObject(1, (u, v), 0.0, {"type": "hotel"})]),
        )
        leaf = hierarchy.leaf_of_edge(u, v)
        ad.update_attrs(1, {"type": "fuel"})
        assert not ad.rnet_may_contain(leaf.rnet_id, Predicate.of(type="hotel"))
        assert ad.rnet_may_contain(leaf.rnet_id, Predicate.of(type="fuel"))
        assert ad.get_object(1).attrs == {"type": "fuel"}

    def test_relocate_moves_object(self, setting):
        net, hierarchy, _ = setting
        edges = sorted((a, b) for a, b, _ in net.edges())
        (u, v), (x, y) = edges[0], edges[-1]
        ad = make_directory(setting, ObjectSet([SpatialObject(1, (u, v), 0.0)]))
        ad.relocate(1, (x, y), 0.0)
        assert ad.node_objects(u) == []
        assert [o.object_id for o, _ in ad.node_objects(x)] == [1]
        new_leaf = hierarchy.leaf_of_edge(x, y)
        assert ad.rnet_may_contain(new_leaf.rnet_id, ANY)

    def test_bloom_abstract_rebuild_on_delete(self, setting):
        """Fixed-size abstracts force the rebuild path on deletion."""
        net, hierarchy, _ = setting
        u, v = some_edge(net)
        objects = ObjectSet(
            [
                SpatialObject(1, (u, v), 0.0, {"type": "hotel"}),
                SpatialObject(2, (u, v), 0.1, {"type": "fuel"}),
            ]
        )
        ad = make_directory(
            setting, objects, abstract_factory=bloom_abstract(num_bits=512)
        )
        ad.delete(1)
        leaf = hierarchy.leaf_of_edge(u, v)
        assert ad.rnet_may_contain(leaf.rnet_id, Predicate.of(type="fuel"))
        misses = sum(
            not ad.rnet_may_contain(leaf.rnet_id, Predicate.of(type=f"v{i}"))
            for i in range(30)
        )
        assert misses > 20  # the rebuilt bloom no longer contains "hotel"

    def test_duplicate_insert_raises(self, setting):
        net, _, _ = setting
        u, v = some_edge(net)
        ad = make_directory(setting, ObjectSet([SpatialObject(1, (u, v), 0.0)]))
        from repro.objects.model import ObjectError

        with pytest.raises(ObjectError):
            ad.insert(SpatialObject(1, (u, v), 0.2))


class TestMultipleDirectories:
    def test_two_directories_coexist(self, setting):
        net, hierarchy, pager = setting
        u, v = some_edge(net)
        hotels = AssociationDirectory(
            pager, net, hierarchy,
            ObjectSet([SpatialObject(1, (u, v), 0.0, {"type": "hotel"})]),
            name="hotels",
        )
        fuel = AssociationDirectory(
            pager, net, hierarchy,
            ObjectSet([SpatialObject(1, (u, v), 0.3, {"type": "fuel"})]),
            name="fuel",
        )
        assert hotels.node_objects(u)[0][0].attrs["type"] == "hotel"
        assert fuel.node_objects(u)[0][0].attrs["type"] == "fuel"
        hotels.delete(1)
        assert fuel.node_objects(u)  # unaffected


class TestBulkExport:
    def test_export_entries_roundtrip(self, setting):
        net, _, _ = setting
        objects = ObjectSet()
        for i in range(6):
            u, v = some_edge(net, i * 3)
            objects.add(
                SpatialObject(i, (u, v), net.edge_distance(u, v) / 3, {"t": "x"})
            )
        ad = make_directory(setting, objects)
        node_entries, abstracts = ad.export_entries()
        # Node entries match the charged per-node lookups, stored order kept.
        for node, entries in node_entries.items():
            assert entries == ad.node_objects(node)
        exported = {obj.object_id for e in node_entries.values() for obj, _ in e}
        assert exported == set(objects.ids())
        # Abstracts cover exactly the Rnets holding objects.
        for rnet_id, abstract in abstracts.items():
            assert ad.rnet_abstract(rnet_id) is abstract
            assert abstract.count > 0

    def test_free_pages_releases_storage(self, setting):
        net, _, pager = setting
        before = pager.page_count
        objects = ObjectSet()
        for i in range(10):
            u, v = some_edge(net, i)
            objects.add(SpatialObject(i, (u, v), 0.0))
        ad = make_directory(setting, objects)
        assert pager.page_count > before
        freed = ad.free_pages()
        assert freed > 0
        assert pager.page_count == before
