"""ShmVector and the ``"shm"`` backend: segments, splices, lifecycle.

The storage contract the process replica pool builds on: length lives in
the shared header (attachers observe owner splices with no side
channel), in-place splices keep the segment name, outgrowing the
capacity slack re-homes to a *new* name (the pool's reload trigger), and
teardown is close-everywhere / unlink-exactly-once-by-the-owner (the
discipline RA006 enforces statically).
"""

import pytest

from repro.core.frozen_backends import get_backend, shared_memory_available
from repro.core.shm_arrays import (
    HEADER_BYTES,
    ShmSegmentError,
    ShmVector,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="host has no POSIX shared memory (/dev/shm)",
)


@pytest.fixture
def vector():
    vec = ShmVector("q", range(10))
    yield vec
    vec.close()


class TestVectorBasics:
    def test_sequence_protocol(self, vector):
        assert len(vector) == 10
        assert vector[3] == 3
        assert vector[2:5] == [2, 3, 4]
        assert list(vector) == list(range(10))
        assert vector.tolist() == list(range(10))
        assert vector.tobytes() == b"".join(
            i.to_bytes(8, "little") for i in range(10)
        )

    def test_segment_layout(self, vector):
        assert vector.capacity >= len(vector)
        assert vector.segment_bytes == HEADER_BYTES + vector.capacity * 8

    def test_unknown_typecode_rejected(self):
        with pytest.raises(ShmSegmentError, match="typecodes"):
            ShmVector("f", (0.0,))

    def test_float_and_mask_typecodes(self):
        for typecode, values in (("d", [0.5, 1.5]), ("b", [0, 1, 1])):
            vec = ShmVector(typecode, values)
            try:
                assert vec.tolist() == values
            finally:
                vec.close()


class TestAttachers:
    def test_attach_sees_owner_writes(self, vector):
        reader = ShmVector.attach(vector.segment_name, "q")
        try:
            vector[4] = 99
            assert reader[4] == 99
        finally:
            reader.close()

    def test_attach_sees_resizing_splice_via_header(self, vector):
        reader = ShmVector.attach(vector.segment_name, "q")
        try:
            # In-slack resize: same segment, new length, no side channel.
            vector[2:2] = [77, 78]
            assert len(reader) == 12
            assert reader.tolist() == vector.tolist()
        finally:
            reader.close()

    def test_attacher_may_not_resize(self, vector):
        reader = ShmVector.attach(vector.segment_name, "q")
        try:
            with pytest.raises(ShmSegmentError, match="owning process"):
                reader[0:0] = [1, 2, 3]
        finally:
            reader.close()

    def test_attacher_close_keeps_segment_alive(self, vector):
        reader = ShmVector.attach(vector.segment_name, "q")
        reader.close()
        # Only the owner unlinks: the segment is still attachable.
        again = ShmVector.attach(vector.segment_name, "q")
        try:
            assert again.tolist() == vector.tolist()
        finally:
            again.close()


class TestSplices:
    def test_same_size_rewrite_keeps_name_and_capacity(self, vector):
        name, cap = vector.segment_name, vector.capacity
        vector[0:10] = list(range(100, 110))
        assert vector.tolist() == list(range(100, 110))
        assert (vector.segment_name, vector.capacity) == (name, cap)

    def test_in_slack_resize_keeps_name(self, vector):
        name = vector.segment_name
        vector[5:5] = [50]
        vector[0:2] = []
        assert vector.tolist() == [2, 3, 4, 50, 5, 6, 7, 8, 9]
        assert vector.segment_name == name

    def test_outgrowing_slack_rehomes_to_new_name(self, vector):
        name = vector.segment_name
        vector[10:10] = list(range(10, 10 + vector.capacity))
        assert vector.segment_name != name
        assert vector.tolist() == list(range(10 + (vector.capacity)))[
            : len(vector)
        ]
        # The old segment was retired through the owner path: gone.
        with pytest.raises(FileNotFoundError):
            ShmVector.attach(name, "q")

    def test_step_slices_rejected(self, vector):
        with pytest.raises(ShmSegmentError, match="step-1"):
            vector[0:4:2] = [1, 2]

    def test_view_auto_heals_after_splice(self, vector):
        stale = vector.view()
        vector[0:0] = [42]
        # The pre-splice export is released, not left dangling: a holder
        # cannot read stale data, it gets a hard error.
        with pytest.raises(ValueError, match="released"):
            stale[0]
        assert len(vector.view()) == 11
        assert vector.view()[0] == 42


class TestLifecycle:
    def test_owner_close_unlinks_exactly_once(self):
        vec = ShmVector("q", (1, 2, 3))
        name = vec.segment_name
        vec.close()
        vec.close()  # idempotent: the unlink does not run twice
        with pytest.raises(FileNotFoundError):
            ShmVector.attach(name, "q")

    def test_backend_arrays_are_shm_vectors(self):
        backend = get_backend("shm")
        ints = backend.int_array([3, 1, 2])
        floats = backend.float_array([0.25, 0.75])
        try:
            assert isinstance(ints, ShmVector)
            assert isinstance(floats, ShmVector)
            assert ints.tolist() == [3, 1, 2]
            assert floats.tolist() == [0.25, 0.75]
        finally:
            ints.close()
            floats.close()
