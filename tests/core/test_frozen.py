"""FrozenRoad: compiled fast path equivalence, isolation, batch API.

The ``frozen`` fixture is parametrised over every installed array backend
(list / compact / numpy), so the whole equivalence + patch contract runs
per backend.
"""

import sys

import pytest

from repro.baselines.engine import EngineError
from repro.baselines.road_adapter import ROADEngine
from repro.core.framework import ROAD
from repro.core.frozen import FrozenRoad, FrozenRoadError, freeze_road
from repro.core.frozen_backends import installed_backends
from repro.core.search import SearchStats, iter_nearest_objects
from repro.objects.model import SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import (
    ANY,
    AggregateKNNQuery,
    KNNQuery,
    Predicate,
    RangeQuery,
)
from repro.queries.workload import mixed_workload


@pytest.fixture
def built(medium_grid):
    objects = place_uniform(
        medium_grid, 20, seed=11, attr_choices={"type": ["a", "b", "c"]}
    )
    road = ROAD.build(medium_grid, levels=3, fanout=4)
    road.attach_objects(objects)
    return medium_grid, objects, road


@pytest.fixture(params=installed_backends())
def frozen(built, request):
    """One frozen snapshot per installed array backend.

    Every test taking this fixture asserts the compiled fast path — and
    the apply() patch lifecycle — per backend, so "list", "compact" and
    (when installed) "numpy" all hold the same equivalence contract.
    """
    _, _, road = built
    return road.freeze(backend=request.param)


class TestEquivalence:
    def test_knn_byte_identical(self, built, frozen):
        net, _, road = built
        for node in list(net.node_ids())[::7]:
            for k in (1, 3, 10):
                assert frozen.knn(node, k) == road.knn(node, k)

    def test_range_byte_identical(self, built, frozen):
        net, _, road = built
        for node in list(net.node_ids())[::9]:
            for radius in (0.0, 2.5, 8.0):
                assert frozen.range(node, radius) == road.range(node, radius)

    def test_predicate_byte_identical(self, built, frozen):
        net, _, road = built
        pred = Predicate.of(type="a")
        for node in list(net.node_ids())[::11]:
            assert frozen.knn(node, 4, pred) == road.knn(node, 4, pred)
            assert frozen.range(node, 6.0, pred) == road.range(node, 6.0, pred)

    def test_search_stats_identical(self, built, frozen):
        _, _, road = built
        s_frozen, s_charged = SearchStats(), SearchStats()
        frozen.knn(0, 5, stats=s_frozen)
        road.knn(0, 5, stats=s_charged)
        assert s_frozen == s_charged

    def test_iter_nearest_objects_identical(self, built, frozen):
        _, _, road = built
        lazy = list(frozen.iter_nearest_objects(42))
        charged = list(
            iter_nearest_objects(road.overlay, road.directory(), 42)
        )
        assert lazy == charged


class TestZeroPagerTraffic:
    def test_queries_never_touch_pager(self, built, frozen):
        _, _, road = built
        before = road.pager.stats.snapshot()
        frozen.knn(0, 5)
        frozen.range(5, 7.0, Predicate.of(type="b"))
        list(frozen.iter_nearest_objects(3))
        diff = road.pager.stats.diff(before)
        assert (diff.reads, diff.writes, diff.hits, diff.misses) == (0, 0, 0, 0)


class TestBatch:
    def test_execute_many_matches_individual(self, built, frozen):
        net, _, road = built
        queries = mixed_workload(
            net, 30, k=3, radius=6.0, seed=2,
            predicates=[ANY, Predicate.of(type="a")],
        )
        batch = frozen.execute_many(queries)
        assert batch == [frozen.execute(q) for q in queries]
        assert batch == road.execute_many(queries)

    def test_charged_execute_many_matches_execute(self, built):
        net, _, road = built
        queries = mixed_workload(net, 12, k=2, radius=4.0, seed=5)
        assert road.execute_many(queries) == [road.execute(q) for q in queries]

    def test_execute_many_rejects_unknown_query(self, built, frozen):
        _, _, road = built
        with pytest.raises(TypeError):
            frozen.execute_many([object()])
        with pytest.raises(TypeError):
            road.execute_many([object()])

    def test_predicate_masks_are_shared(self, frozen):
        pred = Predicate.of(type="a")
        frozen.knn(0, 2, pred)
        mask = frozen._rnet_masks[pred]
        frozen.range(9, 5.0, pred)
        assert frozen._rnet_masks[pred] is mask  # compiled once per predicate


class TestSnapshotSemantics:
    def test_snapshot_isolated_from_object_churn(self, built, frozen):
        net, _, road = built
        node = 0
        before = frozen.knn(node, 3)
        new_id = road.directory().objects.next_id()
        road.insert_object(SpatialObject(new_id, (0, 1), 0.0))
        assert frozen.knn(node, 3) == before  # snapshot unaffected
        refrozen = road.freeze()
        assert refrozen.knn(node, 3) == road.knn(node, 3)

    def test_unknown_node_raises(self, frozen):
        with pytest.raises(FrozenRoadError):
            frozen.knn(10_000, 1)
        with pytest.raises(FrozenRoadError):
            frozen.range(10_000, 1.0)

    def test_invalid_parameters_raise(self, frozen):
        with pytest.raises(ValueError):
            frozen.knn(0, 0)
        with pytest.raises(ValueError):
            frozen.range(0, -1.0)

    def test_freeze_unknown_directory_raises(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        with pytest.raises(KeyError):
            road.freeze(directory="missing")

    def test_freeze_road_helper_is_deprecated_shim(self, built):
        _, _, road = built
        with pytest.warns(DeprecationWarning, match="road-repro deprecated"):
            snapshot = freeze_road(road)
        assert snapshot.knn(0, 2) == road.knn(0, 2)

    def test_execute_dispatch(self, frozen):
        assert frozen.execute(KNNQuery(0, 2)) == frozen.knn(0, 2)
        assert frozen.execute(RangeQuery(0, 3.0)) == frozen.range(0, 3.0)
        with pytest.raises(TypeError):
            frozen.execute("not a query")

    def test_introspection(self, built, frozen):
        net, _, _ = built
        assert frozen.num_nodes == net.num_nodes
        assert frozen.num_objects == 2 * 20  # one slot per host-edge endpoint
        assert frozen.nbytes > 0
        assert "FrozenRoad" in repr(frozen)


class TestFrozenEngineMode:
    def test_frozen_mode_matches_charged(self, medium_grid):
        objects = place_uniform(medium_grid, 12, seed=4)
        charged = ROADEngine(medium_grid.copy(), objects, levels=2)
        frozen = ROADEngine(medium_grid.copy(), objects, levels=2, mode="frozen")
        for node in (0, 17, 54):
            assert frozen.knn(node, 3) == charged.knn(node, 3)
            assert frozen.range(node, 5.0) == charged.range(node, 5.0)

    def test_refreeze_mode_invalidates_snapshot(self, medium_grid):
        objects = place_uniform(medium_grid, 12, seed=4)
        engine = ROADEngine(
            medium_grid.copy(), objects, levels=2, mode="frozen",
            maintenance_mode="refreeze",
        )
        assert engine.frozen is not None
        u, v, d = next(iter(engine.network.edges()))
        engine.update_edge_distance(u, v, d * 3)
        assert engine.frozen is None  # stale snapshot dropped
        result = engine.knn(0, 2)  # lazily re-frozen
        assert engine.frozen is not None
        assert result == engine.road.knn(0, 2)
        assert engine.stats()["maintenance"]["invalidations"] == 1

    def test_patch_mode_keeps_snapshot_current(self, medium_grid):
        objects = place_uniform(medium_grid, 12, seed=4)
        engine = ROADEngine(medium_grid.copy(), objects, levels=2, mode="frozen")
        snapshot = engine.frozen
        assert snapshot is not None
        u, v, d = next(iter(engine.network.edges()))
        engine.update_edge_distance(u, v, d * 3)
        assert engine.frozen is snapshot  # patched in place, never dropped
        assert engine.knn(0, 3) == engine.road.knn(0, 3)
        counters = engine.stats()["maintenance"]
        assert counters["updates"] == 1
        assert counters["patches_applied"] + counters["patch_fallbacks"] == 1

    def test_stats_surface_last_report(self, medium_grid):
        objects = place_uniform(medium_grid, 12, seed=4)
        engine = ROADEngine(medium_grid.copy(), objects, levels=2, mode="frozen")
        assert engine.stats()["last_report"] is None
        new_id = engine.objects.next_id()
        u, v, _ = next(iter(engine.network.edges()))
        engine.insert_object(SpatialObject(new_id, (u, v), 0.0))
        report = engine.stats()["last_report"]
        assert report is not None and report.kind == "insert_object"
        assert report.obj.object_id == new_id
        assert engine.last_report is report
        removed = engine.delete_object(new_id)
        assert removed.object_id == new_id
        assert engine.stats()["last_report"].kind == "delete_object"
        assert engine.stats()["maintenance"]["updates"] == 2

    def test_invalid_mode_rejected(self, medium_grid):
        with pytest.raises(EngineError):
            ROADEngine(
                medium_grid.copy(),
                place_uniform(medium_grid, 3, seed=1),
                levels=2,
                mode="warp",
            )
        with pytest.raises(EngineError):
            ROADEngine(
                medium_grid.copy(),
                place_uniform(medium_grid, 3, seed=1),
                levels=2,
                maintenance_mode="hope",
            )


class TestIncrementalStats:
    def test_partial_iterator_reports_stats(self, built, frozen):
        """Stats update at each yield, like the charged iterator."""
        _, _, road = built
        s_frozen, s_charged = SearchStats(), SearchStats()
        lazy = frozen.iter_nearest_objects(0, stats=s_frozen)
        charged = iter_nearest_objects(
            road.overlay, road.directory(), 0, stats=s_charged
        )
        assert next(lazy) == next(charged)
        lazy.close()
        charged.close()
        assert s_frozen.objects_popped == s_charged.objects_popped == 1
        assert s_frozen == s_charged


class TestMaskCacheBound:
    def test_mask_caches_are_bounded(self, frozen):
        from repro.core.frozen import MAX_CACHED_PREDICATES

        for i in range(MAX_CACHED_PREDICATES + 40):
            frozen.knn(0, 1, Predicate.of(type=f"p{i}"))
        assert len(frozen._rnet_masks) <= MAX_CACHED_PREDICATES
        assert len(frozen._obj_masks) <= MAX_CACHED_PREDICATES
        # An evicted predicate still answers correctly (recompiled).
        assert frozen.knn(0, 2, Predicate.of(type="a")) == frozen.knn(
            0, 2, Predicate.of(type="a")
        )


class TestApplyPatch:
    def test_edge_weight_patch_matches_fresh_freeze(self, built, frozen):
        net, _, road = built
        u, v, d = next(iter(net.edges()))
        report = road.update_edge_distance(u, v, d * 2.5)
        frozen.apply(report)
        fresh = road.freeze()
        for node in (0, 17, 54, 99):
            s_patched, s_fresh = SearchStats(), SearchStats()
            assert frozen.knn(node, 4, stats=s_patched) == fresh.knn(
                node, 4, stats=s_fresh
            )
            assert s_patched == s_fresh
            assert frozen.range(node, 6.0) == fresh.range(node, 6.0)

    def test_patched_snapshot_stays_pager_free(self, built, frozen):
        _, _, road = built
        u, v, d = next(iter(road.network.edges()))
        report = road.update_edge_distance(u, v, d * 1.7)
        # The delta-patch itself is uncharged (stored_tree/peek reads):
        # snapshot bookkeeping must not pollute the maintenance I/O profile.
        before = road.pager.stats.snapshot()
        outcome = frozen.apply(report)
        if outcome == "patched":
            diff = road.pager.stats.diff(before)
            assert (diff.reads, diff.writes, diff.hits, diff.misses) == (0, 0, 0, 0)
        before = road.pager.stats.snapshot()
        frozen.knn(0, 5)
        frozen.range(9, 4.0, Predicate.of(type="a"))
        diff = road.pager.stats.diff(before)
        assert (diff.reads, diff.writes, diff.hits, diff.misses) == (0, 0, 0, 0)

    def test_object_patch_is_pager_free(self, built, frozen):
        _, _, road = built
        u, v, d = next(iter(road.network.edges()))
        report = road.insert_object(
            SpatialObject(road.directory().objects.next_id(), (u, v), d / 2)
        )
        before = road.pager.stats.snapshot()
        assert frozen.apply(report) == "patched"
        diff = road.pager.stats.diff(before)
        assert (diff.reads, diff.writes, diff.hits, diff.misses) == (0, 0, 0, 0)

    def test_object_delta_patch(self, built, frozen):
        net, _, road = built
        u, v, d = next(iter(net.edges()))
        new_id = road.directory().objects.next_id()
        report = road.insert_object(
            SpatialObject(new_id, (u, v), d / 3, {"type": "a"})
        )
        assert frozen.apply(report) == "patched"
        assert frozen.knn(u, 1) == road.knn(u, 1)
        report = road.delete_object(new_id)
        assert frozen.apply(report) == "patched"
        fresh = road.freeze()
        for node in (u, v, 42):
            assert frozen.knn(node, 5) == fresh.knn(node, 5)

    def test_update_attrs_patch(self, built, frozen):
        net, _, road = built
        target = road.directory().objects.ids()[0]
        report = road.update_object_attrs(target, {"type": "fuel"})
        assert report.kind == "update_object"
        assert frozen.apply(report) == "patched"
        pred = Predicate.of(type="fuel")
        fresh = road.freeze()
        for node in (0, 42, 99):
            assert frozen.knn(node, 3, pred) == fresh.knn(node, 3, pred)
            assert frozen.knn(node, 3, pred) == road.knn(node, 3, pred)

    def test_engine_structural_updates_reconcile_snapshot(self, medium_grid):
        objects = place_uniform(medium_grid, 12, seed=4)
        engine = ROADEngine(medium_grid.copy(), objects, levels=2, mode="frozen")
        a, b = 0, engine.network.num_nodes - 1
        report = engine.add_edge(a, b, 2.0)
        assert report.structural
        assert engine.knn(a, 3) == engine.road.knn(a, 3)
        if not engine.objects.on_edge(a, b):
            engine.remove_edge(a, b)
            assert engine.knn(a, 3) == engine.road.knn(a, 3)
        counters = engine.stats()["maintenance"]
        assert counters["updates"] >= 1

    def test_structural_update_falls_back_to_recompile(self, built, frozen):
        net, _, road = built
        a, b = 0, net.num_nodes - 1
        assert not net.has_edge(a, b)
        report = road.add_edge(a, b, 3.0)
        assert report.structural
        assert frozen.apply(report) == "recompiled"
        fresh = road.freeze()
        for node in (a, b, 42):
            assert frozen.knn(node, 4) == fresh.knn(node, 4)

    def test_apply_without_source_raises(self, built):
        _, _, road = built
        node_entries, abstracts = road.directory().export_entries()
        orphan = FrozenRoad(
            dict(road.overlay.iter_trees()), node_entries, abstracts
        )
        u, v, d = next(iter(road.network.edges()))
        report = road.update_edge_distance(u, v, d * 2)
        with pytest.raises(FrozenRoadError):
            orphan.apply(report)
        orphan.apply(report, road)  # explicit road works
        assert orphan.knn(0, 3) == road.freeze().knn(0, 3)

    def test_report_identities_populated(self, built):
        net, _, road = built
        u, v, d = next(iter(net.edges()))
        report = road.update_edge_distance(u, v, d * 4.0)
        assert report.kind == "edge_distance"
        assert {u, v} <= report.dirty_nodes
        assert report.edge == (min(u, v), max(u, v))
        assert report.refreshed_tree_nodes == len(report.dirty_nodes)


class TestBackends:
    def test_memory_stats_sanity(self, built, frozen):
        stats = frozen.memory_stats()
        assert stats["backend"] == frozen.backend
        assert stats["total_bytes"] > 0
        assert stats["payload_bytes"] == frozen.nbytes
        assert stats["elements"] == sum(
            len(a) for a in frozen._arrays().values()
        )
        assert set(stats["arrays"]) == set(frozen._arrays())
        assert stats["object_refs"] == frozen.num_objects
        # typed buffers hold ~the payload; boxed lists pay several times it
        if frozen.backend == "list":
            assert stats["total_bytes"] > 2 * stats["payload_bytes"]
        else:
            assert stats["total_bytes"] < 2 * stats["payload_bytes"]

    def test_mask_cache_accounted(self, frozen):
        before = frozen.memory_stats()["mask_cache_bytes"]
        frozen.knn(0, 2, Predicate.of(type="a"))
        stats = frozen.memory_stats()
        assert stats["mask_cache_entries"] == 2  # rnet + object masks
        assert stats["mask_cache_bytes"] > before

    def test_compact_resident_smaller_than_list(self, built):
        _, _, road = built
        by_backend = {
            name: road.freeze(backend=name).memory_stats()["total_bytes"]
            for name in installed_backends()
        }
        assert by_backend["compact"] < by_backend["list"] / 2
        if "numpy" in by_backend:  # same stdlib buffers underneath
            assert by_backend["numpy"] == by_backend["compact"]

    def test_unknown_backend_rejected(self, built):
        _, _, road = built
        with pytest.raises(ValueError):
            road.freeze(backend="arrow")
        with pytest.raises(ValueError):
            ROADEngine(
                road.network.copy(),
                place_uniform(road.network, 3, seed=1),
                levels=2,
                backend="arrow",
            )

    def test_numpy_backend_requires_numpy(self, built, monkeypatch):
        """Without numpy, backend="numpy" raises a clear ImportError."""
        monkeypatch.setitem(sys.modules, "numpy", None)  # hide if installed
        _, _, road = built
        with pytest.raises(ImportError, match="road-repro\\[numpy\\]"):
            road.freeze(backend="numpy")

    def test_env_default_backend(self, built, monkeypatch):
        _, _, road = built
        monkeypatch.setenv("REPRO_BACKEND", "compact")
        assert road.freeze().backend == "compact"
        monkeypatch.setenv("REPRO_BACKEND", "warp")
        with pytest.raises(ValueError):
            road.freeze()

    def test_engine_backend_plumbing(self, medium_grid):
        objects = place_uniform(medium_grid, 12, seed=4)
        engine = ROADEngine(
            medium_grid.copy(), objects, levels=2, mode="frozen",
            backend="compact",
        )
        assert engine.frozen.backend == "compact"
        stats = engine.stats()
        assert stats["frozen_backend"] == "compact"
        assert stats["frozen_memory"]["backend"] == "compact"
        # the patch lifecycle re-freezes with the engine's backend too
        u, v, d = next(iter(engine.network.edges()))
        engine.update_edge_distance(u, v, d * 2)
        assert engine.frozen.backend == "compact"

    def test_backend_survives_recompile(self, built, frozen):
        net, _, road = built
        a, b = 0, net.num_nodes - 1
        if net.has_edge(a, b):
            pytest.skip("grid already has the corner edge")
        backend = frozen.backend
        report = road.add_edge(a, b, 3.0)
        assert frozen.apply(report) == "recompiled"
        assert frozen.backend == backend
        assert frozen.knn(0, 3) == road.freeze(backend=backend).knn(0, 3)


class TestMultiDirectory:
    @pytest.fixture
    def multi(self, medium_grid):
        hotels = place_uniform(
            medium_grid, 9, seed=23, attr_choices={"type": ["h1", "h2"]}
        )
        objects = place_uniform(
            medium_grid, 20, seed=11, attr_choices={"type": ["a", "b", "c"]}
        )
        road = ROAD.build(medium_grid, levels=3, fanout=4)
        road.attach_objects(objects)
        road.attach_objects(hotels, name="hotels")
        return road, objects, hotels

    def test_default_freeze_compiles_all_attached(self, multi):
        road, _, _ = multi
        frozen = road.freeze()
        assert frozen.directory_names == ["objects", "hotels"]
        assert frozen.default_directory == "objects"

    def test_per_directory_queries_match_charged(self, multi):
        road, _, _ = multi
        frozen = road.freeze()
        for node in (0, 17, 54):
            for name in ("objects", "hotels"):
                assert frozen.knn(node, 3, directory=name) == road.knn(
                    node, 3, directory=name
                )
                assert frozen.range(node, 6.0, directory=name) == road.range(
                    node, 6.0, directory=name
                )
                assert frozen.aggregate_knn(
                    [node, 42], 2, directory=name
                ) == road.aggregate_knn([node, 42], 2, directory=name)

    def test_entry_arrays_shared_not_duplicated(self, multi):
        road, _, _ = multi
        combined = road.freeze()
        singles = [
            road.freeze(directory=name) for name in ("objects", "hotels")
        ]
        # The entry/shortcut/edge arrays are compiled once: the combined
        # snapshot's payload is far below the sum of the singles'.
        assert combined.nbytes < sum(s.nbytes for s in singles) * 0.75

    def test_apply_patches_every_directory(self, multi):
        road, _, hotels_set = multi
        frozen = road.freeze()
        u, v, d = next(iter(road.network.edges()))
        # Object churn in the named provider.
        report = road.insert_object(
            SpatialObject(hotels_set.next_id(), (u, v), d / 2, {"type": "h1"}),
            directory="hotels",
        )
        assert report.directory == "hotels"
        assert frozen.apply(report) == "patched"
        # Edge rescale touches both providers' spans.
        report = road.update_edge_distance(u, v, d * 1.5)
        assert frozen.apply(report) in ("patched", "recompiled")
        for name in ("objects", "hotels"):
            fresh = road.freeze(directory=name)
            for node in (u, v, 42):
                assert frozen.knn(node, 4, directory=name) == fresh.knn(node, 4)

    def test_masks_are_per_directory(self, multi):
        road, _, _ = multi
        frozen = road.freeze()
        pred = Predicate.of(type="h1")
        hotels = frozen.knn(0, 3, pred, directory="hotels")
        objects = frozen.knn(0, 3, pred, directory="objects")
        assert hotels  # the hotels provider has h1 objects...
        assert objects == []  # ...the default provider does not
        assert frozen._state("hotels").rnet_masks[pred] is not (
            frozen._state("objects").rnet_masks[pred]
        )

    def test_memory_stats_per_directory_breakdown(self, multi):
        road, _, _ = multi
        frozen = road.freeze()
        stats = frozen.memory_stats()
        assert set(stats["directories"]) == {"objects", "hotels"}
        assert all(
            d["object_array_bytes"] > 0 for d in stats["directories"].values()
        )
        assert stats["directories"]["objects"]["object_refs"] == 2 * 20
        assert stats["directories"]["hotels"]["object_refs"] == 2 * 9
        assert stats["object_refs"] == 2 * (20 + 9)
        # prefixed per-directory object arrays appear in the accounting
        assert "objects:obj_id" in stats["arrays"]
        assert "hotels:obj_id" in stats["arrays"]

    def test_unknown_directory_raises_on_query(self, multi):
        from repro.serving.dispatch import UnknownDirectoryError

        road, _, _ = multi
        frozen = road.freeze()
        with pytest.raises(UnknownDirectoryError):
            frozen.knn(0, 2, directory="parking")
        with pytest.raises(UnknownDirectoryError):
            list(frozen.iter_nearest_objects(0, directory="parking"))

    def test_uncompiled_directory_churn_is_free_noop(self, multi):
        """Churn in a directory the snapshot never compiled patches
        nothing — and must not invalidate the cached query views."""
        road, _, hotels_set = multi
        frozen = road.freeze(directory="objects")  # hotels NOT compiled
        frozen.knn(0, 2)  # builds the cached views
        views = frozen._views
        assert views is not None
        u, v, d = next(iter(road.network.edges()))
        report = road.insert_object(
            SpatialObject(hotels_set.next_id(), (u, v), d / 2),
            directory="hotels",
        )
        assert frozen.apply(report) == "patched"
        assert frozen._views is views  # the no-op kept the caches
        assert frozen.knn(0, 2) == road.freeze(directory="objects").knn(0, 2)

    def test_uncompiled_churn_noop_without_source_road(self, medium_grid):
        """A no-op churn report needs no live source ROAD: a pure-serving
        snapshot whose road was dropped keeps serving through it."""
        import gc

        hotels = place_uniform(medium_grid, 6, seed=3)
        objects = place_uniform(medium_grid, 8, seed=4)
        road = ROAD.build(medium_grid, levels=2)
        road.attach_objects(objects)
        road.attach_objects(hotels, name="hotels")
        frozen = road.freeze(directory="objects")  # hotels NOT compiled
        u, v, d = next(iter(road.network.edges()))
        report = road.insert_object(
            SpatialObject(hotels.next_id(), (u, v), d / 2),
            directory="hotels",
        )
        answers = frozen.knn(0, 2)
        del road
        gc.collect()
        assert frozen.apply(report) == "patched"
        assert frozen.knn(0, 2) == answers

    def test_recompile_keeps_directory_set_and_default(self, multi):
        road, _, _ = multi
        frozen = road.freeze(directories=["hotels", "objects"], default="hotels")
        a, b = 0, road.network.num_nodes - 1
        if road.network.has_edge(a, b):
            pytest.skip("grid already has the corner edge")
        report = road.add_edge(a, b, 3.0)
        assert frozen.apply(report) == "recompiled"
        assert frozen.directory_names == ["hotels", "objects"]
        assert frozen.default_directory == "hotels"


class TestFrozenAggregate:
    def test_aggregate_matches_charged(self, built, frozen):
        _, _, road = built
        for agg in ("sum", "max", "min"):
            assert frozen.aggregate_knn([0, 55, 99], 4, agg) == road.aggregate_knn(
                [0, 55, 99], 4, agg
            )

    def test_aggregate_with_predicate(self, built, frozen):
        _, _, road = built
        pred = Predicate.of(type="a")
        assert frozen.aggregate_knn([3, 77], 3, "sum", pred) == road.aggregate_knn(
            [3, 77], 3, "sum", pred
        )

    def test_aggregate_query_dispatch(self, built, frozen):
        _, _, road = built
        query = AggregateKNNQuery((0, 99), 3, "max")
        assert frozen.execute(query) == road.execute(query)
        assert frozen.execute_many([query]) == road.execute_many([query])

    def test_aggregate_zero_pager_traffic(self, built, frozen):
        _, _, road = built
        before = road.pager.stats.snapshot()
        frozen.aggregate_knn([0, 55], 3, "sum")
        diff = road.pager.stats.diff(before)
        assert (diff.reads, diff.writes, diff.hits, diff.misses) == (0, 0, 0, 0)

    def test_aggregate_through_engine_modes(self, medium_grid):
        objects = place_uniform(medium_grid, 12, seed=4)
        charged = ROADEngine(medium_grid.copy(), objects, levels=2)
        frozen = ROADEngine(medium_grid.copy(), objects, levels=2, mode="frozen")
        query = AggregateKNNQuery((0, 42, 99), 3, "sum")
        assert charged.execute(query) == frozen.execute(query)
        assert charged.aggregate_knn([0, 9], 2) == frozen.aggregate_knn([0, 9], 2)
