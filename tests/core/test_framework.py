"""ROAD facade: build options, directories, stats, route overlay."""

import pytest

from repro.core.framework import ROAD
from repro.core.object_abstract import counting_abstract
from repro.core.route_overlay import RouteOverlayError
from repro.graph.generators import grid_network
from repro.objects.model import ObjectSet, SpatialObject
from repro.objects.placement import place_clustered, place_uniform
from repro.partition.grid import grid_partition_tree
from repro.storage.pager import PageManager
from tests.oracle import assert_same_result, brute_knn


class TestBuild:
    def test_default_build(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2, fanout=4)
        road.hierarchy.validate()
        assert road.overlay.node_count == medium_grid.num_nodes
        assert road.build_report.total_seconds > 0

    def test_custom_partition_tree(self, medium_grid):
        tree = grid_partition_tree(medium_grid, levels=2)
        road = ROAD.build(medium_grid, partition_tree=tree)
        road.hierarchy.validate()

    def test_no_reduction_build(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2, fanout=4, reduce_shortcuts=False)
        assert road.shortcuts.total(stored=True) == road.shortcuts.total()

    def test_external_pager(self, medium_grid):
        pager = PageManager(buffer_pages=10, name="shared")
        road = ROAD.build(medium_grid, levels=2, pager=pager)
        assert road.pager is pager

    def test_deeper_hierarchy_reduces_leaf_size(self, medium_grid):
        shallow = ROAD.build(medium_grid, levels=1, fanout=4)
        deep = ROAD.build(medium_grid, levels=3, fanout=4)
        assert (
            deep.hierarchy.stats()["avg_leaf_edges"]
            < shallow.hierarchy.stats()["avg_leaf_edges"]
        )


class TestDirectories:
    def test_attach_and_query(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        road.attach_objects(place_uniform(medium_grid, 10, seed=1))
        assert len(road.knn(0, 3)) == 3

    def test_duplicate_name_rejected(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        road.attach_objects(place_uniform(medium_grid, 5, seed=1))
        with pytest.raises(ValueError):
            road.attach_objects(place_uniform(medium_grid, 5, seed=2))

    def test_detach(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        road.attach_objects(place_uniform(medium_grid, 5, seed=1))
        road.detach_objects()
        with pytest.raises(KeyError):
            road.directory()
        with pytest.raises(KeyError):
            road.detach_objects()

    def test_detach_frees_directory_pages(self, medium_grid):
        """Regression: detaching must return every directory page."""
        road = ROAD.build(medium_grid, levels=2)
        before = road.pager.page_count
        road.attach_objects(place_uniform(medium_grid, 40, seed=1))
        assert road.pager.page_count > before
        road.detach_objects()
        assert road.pager.page_count == before

    def test_detach_and_reattach_same_name(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        empty = road.pager.page_count
        for seed in (1, 2, 3):
            road.attach_objects(place_uniform(medium_grid, 6, seed=seed))
            assert len(road.knn(0, 3)) == 3
            road.detach_objects()
            assert road.pager.page_count == empty  # no growth across cycles

    def test_multiple_directories_independent_queries(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        road.attach_objects(
            place_uniform(medium_grid, 8, seed=1), name="restaurants"
        )
        road.attach_objects(
            place_clustered(medium_grid, 8, clusters=2, seed=2), name="hotels"
        )
        assert set(road.directory_names) == {"restaurants", "hotels"}
        r1 = road.knn(0, 2, directory="restaurants")
        r2 = road.knn(0, 2, directory="hotels")
        assert len(r1) == 2 and len(r2) == 2

    def test_custom_abstract_factory(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        directory = road.attach_objects(
            place_uniform(medium_grid, 5, seed=1),
            abstract_factory=counting_abstract,
        )
        from repro.core.object_abstract import CountingAbstract

        abstract = directory.rnet_abstract(road.hierarchy.root.rnet_id)
        assert isinstance(abstract, CountingAbstract)


class TestRouteOverlay:
    def test_unknown_node_raises(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        with pytest.raises(RouteOverlayError):
            road.overlay.shortcut_tree(10_000)

    def test_neighbours_roundtrip(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        for node in list(medium_grid.node_ids())[:10]:
            assert sorted(road.overlay.neighbours(node)) == sorted(
                medium_grid.neighbours(node)
            )

    def test_has_node(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        assert road.overlay.has_node(0)
        assert not road.overlay.has_node(10_000)

    def test_cold_query_charges_io(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        road.attach_objects(place_uniform(medium_grid, 10, seed=1))
        road.pager.drop_cache()
        road.pager.reset_stats()
        road.knn(0, 3)
        assert road.pager.stats.reads > 0


class TestStats:
    def test_stats_contents(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        road.attach_objects(place_uniform(medium_grid, 10, seed=1))
        stats = road.stats()
        assert stats["levels"] == 2
        assert stats["shortcuts_total"] >= stats["shortcuts_stored"]
        assert stats["overlay_pages"] > 0
        assert "objects" in stats["directories"]

    def test_index_size(self, medium_grid):
        road = ROAD.build(medium_grid, levels=2)
        base = road.index_size_bytes()
        road.attach_objects(place_uniform(medium_grid, 10, seed=1))
        assert road.index_size_bytes() > base
        assert road.index_size_bytes(include_directories=False) <= base


class TestDegenerateEdges:
    def test_update_zero_length_edge_distance(self):
        """Regression: distance/old_distance must not divide by zero."""
        net = grid_network(4, 4, seed=1)
        u, v, _ = sorted(net.edges())[0]
        # Degenerate zero-length segment, as a permissive loader may produce.
        net._adj[u][v] = net._adj[v][u] = 0.0
        road = ROAD.build(net, levels=2)
        directory = road.attach_objects(
            ObjectSet([SpatialObject(0, (u, v), 0.0)])
        )
        road.update_edge_distance(u, v, 5.0)  # used to raise ZeroDivisionError
        assert net.edge_distance(u, v) == 5.0
        assert directory.get_object(0).delta == 0.0  # pinned at offset 0
        # The far endpoint's delta must be re-derived from the new length
        # (a stale delta(o, v) = 0 would report the object 5.0 too close).
        (_, delta_v), = directory.node_objects(v)
        assert delta_v == pytest.approx(5.0)
        assert_same_result(
            road.knn(u, 1), brute_knn(net, directory.objects, u, 1)
        )
        assert_same_result(
            road.knn(v, 1), brute_knn(net, directory.objects, v, 1)
        )
        # A later, ordinary rescale still works on the repaired edge.
        road.update_edge_distance(u, v, 10.0)
        assert_same_result(
            road.knn(v, 1), brute_knn(net, directory.objects, v, 1)
        )
