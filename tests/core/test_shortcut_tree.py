"""Shortcut trees: Figure 6 structure per node."""

import pytest

from repro.core.rnet import RnetHierarchy
from repro.core.shortcut_tree import build_shortcut_tree
from repro.core.shortcuts import build_shortcuts
from repro.graph.network import edge_key
from repro.partition.hierarchy import build_partition_tree


@pytest.fixture
def setting(medium_grid):
    tree = build_partition_tree(medium_grid, levels=2, fanout=4)
    hierarchy = RnetHierarchy(medium_grid, tree)
    shortcuts = build_shortcuts(medium_grid, hierarchy)
    return medium_grid, hierarchy, shortcuts


def find_interior_node(hierarchy):
    for leaf in hierarchy.leaves():
        interior = leaf.nodes - leaf.border
        if interior:
            return next(iter(sorted(interior)))
    raise AssertionError("no interior node found")


class TestNonBorderTree:
    def test_single_leaf_with_all_edges(self, setting):
        net, hier, shortcuts = setting
        node = find_interior_node(hier)
        tree = build_shortcut_tree(net, hier, shortcuts, node)
        assert not tree.is_border
        assert tree.roots == []
        assert sorted(tree.local_edges) == sorted(net.neighbours(node))

    def test_all_edges_helper(self, setting):
        net, hier, shortcuts = setting
        node = find_interior_node(hier)
        tree = build_shortcut_tree(net, hier, shortcuts, node)
        assert sorted(tree.all_edges()) == sorted(net.neighbours(node))


class TestBorderTree:
    def _border_tree(self, setting):
        net, hier, shortcuts = setting
        node = next(iter(sorted(hier.at_level(1)[0].border)))
        return net, hier, shortcuts, node, build_shortcut_tree(
            net, hier, shortcuts, node
        )

    def test_roots_cover_bordered_rnets(self, setting):
        net, hier, shortcuts, node, tree = self._border_tree(setting)
        assert tree.is_border
        for root in tree.roots:
            assert node in hier.rnet(root.rnet_id).border

    def test_parent_above_children(self, setting):
        net, hier, shortcuts, node, tree = self._border_tree(setting)
        stack = list(tree.roots)
        while stack:
            entry = stack.pop()
            for child in entry.children:
                assert child.level == entry.level + 1
                assert hier.rnet(child.rnet_id).parent == entry.rnet_id
                stack.append(child)

    def test_shortcuts_belong_to_their_entry(self, setting):
        net, hier, shortcuts, node, tree = self._border_tree(setting)
        stack = list(tree.roots)
        while stack:
            entry = stack.pop()
            for s in entry.shortcuts:
                assert s.source == node
                assert s.rnet_id == entry.rnet_id
            stack.extend(entry.children)

    def test_leaf_entries_hold_rnet_restricted_edges(self, setting):
        net, hier, shortcuts, node, tree = self._border_tree(setting)
        stack = list(tree.roots)
        while stack:
            entry = stack.pop()
            if entry.is_leaf:
                rnet = hier.rnet(entry.rnet_id)
                expected = sorted(
                    (nbr, d)
                    for nbr, d in net.neighbours(node)
                    if edge_key(node, nbr) in rnet.edges
                )
                assert sorted(entry.edges) == expected
            else:
                assert entry.edges == []
                stack.extend(entry.children)

    def test_all_edges_reassembles_full_adjacency(self, setting):
        net, hier, shortcuts, node, tree = self._border_tree(setting)
        assert sorted(tree.all_edges()) == sorted(net.neighbours(node))

    def test_every_border_node_has_some_shortcut(self, setting):
        """Each border node can leave at least one of its bordered Rnets."""
        net, hier, shortcuts = setting
        for rnet in hier.at_level(1):
            for node in sorted(rnet.border):
                tree = build_shortcut_tree(net, hier, shortcuts, node)
                total = 0
                stack = list(tree.roots)
                while stack:
                    entry = stack.pop()
                    total += len(entry.shortcuts)
                    stack.extend(entry.children)
                assert total > 0

    def test_nbytes_positive_and_additive(self, setting):
        net, hier, shortcuts, node, tree = self._border_tree(setting)
        assert tree.nbytes > 0
        assert tree.nbytes >= sum(root.nbytes for root in tree.roots)
