"""ROAD search: Figures 8-10 behaviours, equivalence, pruning effect."""

import pytest

from repro.core.framework import ROAD
from repro.core.search import SearchStats
from repro.graph.generators import chain_network
from repro.objects.model import ObjectSet, SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import KNNQuery, Predicate, RangeQuery
from tests.oracle import assert_same_result, brute_knn, brute_range


@pytest.fixture
def figure8():
    """The running example: 13-node chain, two objects near the far end.

    Nodes are 0..12 (the paper's n1..n13); objects sit on edges (10,11) and
    (11,12) while the query is issued near the other end.
    """
    chain = chain_network(13, spacing=100.0)
    objects = ObjectSet(
        [
            SpatialObject(1, (10, 11), 50.0),   # o1 on (n11, n12)
            SpatialObject(2, (11, 12), 30.0),   # o2 on (n12, n13)
        ]
    )
    road = ROAD.build(chain, levels=2, fanout=2)
    road.attach_objects(objects)
    return chain, objects, road


class TestFigure8Example:
    def test_1nn_finds_o1(self, figure8):
        chain, objects, road = figure8
        result = road.knn(1, 1)  # query at n2
        assert [e.object_id for e in result] == [1]
        # distance: n2 .. n11 is 9 hops of 100 plus 50 into the edge
        assert result[0].distance == pytest.approx(9 * 100.0 + 50.0)

    def test_2nn_order(self, figure8):
        chain, objects, road = figure8
        result = road.knn(1, 2)
        assert [e.object_id for e in result] == [1, 2]

    def test_search_bypasses_object_free_rnets(self, figure8):
        chain, objects, road = figure8
        stats = SearchStats()
        road.knn(1, 1, stats=stats)
        assert stats.rnets_bypassed > 0
        assert stats.shortcuts_taken > 0
        # The bypass must settle far fewer nodes than the 11-hop walk.
        assert stats.nodes_popped < 11

    def test_query_next_to_object(self, figure8):
        chain, objects, road = figure8
        result = road.knn(11, 1)
        assert result[0].object_id in (1, 2)
        assert result[0].distance <= 50.0


class TestKnnBehaviour:
    @pytest.fixture
    def built(self, medium_grid):
        objects = place_uniform(
            medium_grid, 15, seed=2, attr_choices={"type": ["a", "b"]}
        )
        road = ROAD.build(medium_grid, levels=3, fanout=4)
        road.attach_objects(objects)
        return medium_grid, objects, road

    def test_matches_oracle_everywhere(self, built):
        net, objects, road = built
        for nq in range(0, 100, 7):
            got = road.knn(nq, 5)
            assert_same_result(got, brute_knn(net, objects, nq, 5))

    def test_k_one(self, built):
        net, objects, road = built
        got = road.knn(50, 1)
        assert_same_result(got, brute_knn(net, objects, 50, 1))

    def test_k_exceeds_object_count(self, built):
        net, objects, road = built
        got = road.knn(0, 500)
        assert len(got) == len(objects)
        assert_same_result(got, brute_knn(net, objects, 0, 500))

    def test_result_sorted_by_distance(self, built):
        _, _, road = built
        got = road.knn(33, 10)
        distances = [e.distance for e in got]
        assert distances == sorted(distances)

    def test_predicate_filters(self, built):
        net, objects, road = built
        pred = Predicate.of(type="a")
        got = road.knn(10, 4, pred)
        assert_same_result(got, brute_knn(net, objects, 10, 4, pred))
        for entry in got:
            assert objects.get(entry.object_id).attrs["type"] == "a"

    def test_unsatisfiable_predicate_returns_empty(self, built):
        _, _, road = built
        assert road.knn(10, 3, Predicate.of(type="zzz")) == []

    def test_invalid_k_raises(self, built):
        _, _, road = built
        with pytest.raises(ValueError):
            road.knn(10, 0)

    def test_query_from_every_node_class(self, built):
        """Border and interior query nodes both work."""
        net, objects, road = built
        border_node = next(
            iter(road.hierarchy.at_level(1)[0].border)
        )
        interior_candidates = [
            n
            for leaf in road.hierarchy.leaves()
            for n in (leaf.nodes - leaf.border)
        ]
        for nq in [border_node, interior_candidates[0]]:
            assert_same_result(road.knn(nq, 3), brute_knn(net, objects, nq, 3))


class TestRangeBehaviour:
    @pytest.fixture
    def built(self, medium_grid):
        objects = place_uniform(
            medium_grid, 15, seed=3, attr_choices={"type": ["a", "b"]}
        )
        road = ROAD.build(medium_grid, levels=3, fanout=4)
        road.attach_objects(objects)
        return medium_grid, objects, road

    def test_matches_oracle(self, built):
        net, objects, road = built
        for nq, r in [(0, 200.0), (50, 350.0), (99, 500.0), (42, 150.0)]:
            got = road.range(nq, r)
            assert_same_result(got, brute_range(net, objects, nq, r))

    def test_radius_zero(self, built):
        net, objects, road = built
        got = road.range(0, 0.0)
        assert_same_result(got, brute_range(net, objects, 0, 0.0))

    def test_huge_radius_returns_all(self, built):
        net, objects, road = built
        got = road.range(0, 1e9)
        assert len(got) == len(objects)

    def test_predicate(self, built):
        net, objects, road = built
        pred = Predicate.of(type="b")
        got = road.range(25, 400.0, pred)
        assert_same_result(got, brute_range(net, objects, 25, 400.0, pred))

    def test_negative_radius_raises(self, built):
        _, _, road = built
        with pytest.raises(ValueError):
            road.range(0, -1.0)

    def test_results_within_radius(self, built):
        _, _, road = built
        got = road.range(10, 300.0)
        assert all(e.distance <= 300.0 + 1e-9 for e in got)


class TestPruningEffectiveness:
    def test_sparse_objects_prune_more(self, medium_grid):
        """Fewer objects => more bypassing (the paper's core premise)."""
        road = ROAD.build(medium_grid, levels=3, fanout=4)
        sparse = place_uniform(medium_grid, 2, seed=9)
        dense = place_uniform(medium_grid, 80, seed=9)
        road.attach_objects(sparse, name="sparse")
        road.attach_objects(dense, name="dense")

        sparse_stats, dense_stats = SearchStats(), SearchStats()
        road.knn(0, 1, directory="sparse", stats=sparse_stats)
        road.knn(0, 1, directory="dense", stats=dense_stats)
        assert sparse_stats.rnets_bypassed >= dense_stats.rnets_bypassed

    def test_predicate_increases_bypass(self, medium_grid):
        """Selective predicates let abstracts prune object-bearing Rnets."""
        road = ROAD.build(medium_grid, levels=3, fanout=4)
        objects = place_uniform(
            medium_grid, 40, seed=4, attr_choices={"type": ["x", "y"]}
        )
        road.attach_objects(objects)
        rare = Predicate.of(type="x")
        plain_stats, pred_stats = SearchStats(), SearchStats()
        road.knn(0, 1, stats=plain_stats)
        road.knn(0, 1, rare, stats=pred_stats)
        # With the predicate the search may travel farther; what matters is
        # that bypassing still happens rather than full expansion.
        assert pred_stats.rnets_bypassed + pred_stats.rnets_descended > 0


class TestQueryObjects:
    def test_execute_dispatch(self, medium_grid):
        objects = place_uniform(medium_grid, 10, seed=5)
        road = ROAD.build(medium_grid, levels=2, fanout=4)
        road.attach_objects(objects)
        knn_result = road.execute(KNNQuery(0, 3))
        assert len(knn_result) == 3
        range_result = road.execute(RangeQuery(0, 500.0))
        assert all(e.distance <= 500.0 + 1e-9 for e in range_result)
        with pytest.raises(TypeError):
            road.execute("not a query")
