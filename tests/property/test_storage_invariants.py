"""Stateful property tests over the storage substrate."""

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.storage.pager import PAGE_HEADER_SIZE, PAGE_SIZE, PageManager
from repro.storage.rtree import Rect, RTree


class RTreeMachine(RuleBasedStateMachine):
    """R-tree vs a plain list model under random inserts/deletes/queries."""

    def __init__(self):
        super().__init__()
        self.tree = RTree(PageManager(buffer_pages=32), max_entries=4)
        self.model = []  # list of (x, y, ref)
        self.next_ref = 0

    coords = st.tuples(
        st.floats(min_value=0, max_value=64, allow_nan=False),
        st.floats(min_value=0, max_value=64, allow_nan=False),
    )

    @rule(point=coords)
    def insert(self, point):
        x, y = point
        self.tree.insert(Rect.point(x, y), self.next_ref)
        self.model.append((x, y, self.next_ref))
        self.next_ref += 1

    @rule(data=st.data())
    def delete_existing(self, data):
        if not self.model:
            return
        index = data.draw(st.integers(0, len(self.model) - 1))
        x, y, ref = self.model.pop(index)
        assert self.tree.delete(Rect.point(x, y), ref)

    @rule(point=coords)
    def delete_absent(self, point):
        x, y = point
        if not any(mx == x and my == y for mx, my, _ in self.model):
            assert not self.tree.delete(Rect.point(x, y), 10**9)

    @rule(window=st.tuples(coords, coords))
    def window_query_matches_model(self, window):
        (x1, y1), (x2, y2) = window
        rect = Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        got = sorted(ref for _, ref in self.tree.window(rect))
        expected = sorted(
            ref for x, y, ref in self.model if rect.contains_point(x, y)
        )
        assert got == expected

    @rule(point=coords)
    def nearest_matches_model(self, point):
        qx, qy = point
        got = self.tree.nearest(qx, qy, k=3)
        brute = sorted(
            (math.hypot(x - qx, y - qy), ref) for x, y, ref in self.model
        )[:3]
        assert len(got) == len(brute)
        for (got_d, _), (exp_d, _) in zip(got, brute):
            assert abs(got_d - exp_d) < 1e-9

    @invariant()
    def size_consistent(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def structure_valid(self):
        self.tree.validate()


RTreeMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestRTreeStateful = RTreeMachine.TestCase


class PagerMachine(RuleBasedStateMachine):
    """Pager bookkeeping stays consistent under arbitrary operations."""

    def __init__(self):
        super().__init__()
        self.pager = PageManager(buffer_pages=3)
        self.live = {}

    @rule(nbytes=st.integers(0, PAGE_SIZE - PAGE_HEADER_SIZE))
    def allocate(self, nbytes):
        page = self.pager.allocate("t", payload=None, nbytes=nbytes)
        self.live[page.page_id] = nbytes

    @rule(data=st.data())
    def read_live(self, data):
        if not self.live:
            return
        page_id = data.draw(st.sampled_from(sorted(self.live)))
        page = self.pager.read(page_id)
        assert page.page_id == page_id
        assert page.nbytes == self.live[page_id]

    @rule(data=st.data())
    def free_live(self, data):
        if not self.live:
            return
        page_id = data.draw(st.sampled_from(sorted(self.live)))
        self.pager.free(page_id)
        del self.live[page_id]

    @rule()
    def drop_cache(self):
        self.pager.drop_cache()

    @invariant()
    def accounting_consistent(self):
        assert self.pager.page_count == len(self.live)
        assert self.pager.size_bytes == len(self.live) * PAGE_SIZE
        expected_used = sum(self.live.values()) + len(self.live) * PAGE_HEADER_SIZE
        assert self.pager.used_bytes == expected_used

    @invariant()
    def io_counters_sane(self):
        stats = self.pager.stats
        assert stats.reads == stats.misses
        assert stats.reads >= 0 and stats.writes >= 0


PagerMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=40, deadline=None
)
TestPagerStateful = PagerMachine.TestCase
