"""Property-based end-to-end checks: ROAD == brute-force Dijkstra.

These are the paper's implicit correctness claims, driven by hypothesis:
random connected networks, random object placements, random queries, random
hierarchy shapes, and random maintenance interleavings must all agree with
plain network expansion from the query node.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import ROAD
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import Predicate
from tests.conftest import random_connected_network
from tests.oracle import assert_same_result, brute_knn, brute_range


def random_objects(rnd, network, count, with_attrs=False):
    objects = ObjectSet()
    edges = sorted((u, v) for u, v, _ in network.edges())
    for object_id in range(count):
        u, v = edges[rnd.randrange(len(edges))]
        delta = rnd.uniform(0.0, network.edge_distance(u, v))
        attrs = {"type": rnd.choice(["a", "b"])} if with_attrs else {}
        objects.add(SpatialObject(object_id, (u, v), delta, attrs))
    return objects


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    levels=st.integers(1, 4),
    fanout=st.sampled_from([2, 4]),
    k=st.integers(1, 6),
)
def test_knn_equivalence(seed, levels, fanout, k):
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(12, 60), rnd.randint(0, 30))
    objects = random_objects(rnd, network, rnd.randint(1, 12))
    road = ROAD.build(network, levels=levels, fanout=fanout)
    road.attach_objects(objects)
    for _ in range(4):
        nq = rnd.randrange(network.num_nodes)
        assert_same_result(road.knn(nq, k), brute_knn(network, objects, nq, k))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), radius=st.floats(0.0, 40.0))
def test_range_equivalence(seed, radius):
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(12, 50), rnd.randint(0, 25))
    objects = random_objects(rnd, network, rnd.randint(1, 10))
    road = ROAD.build(network, levels=rnd.randint(1, 3), fanout=4)
    road.attach_objects(objects)
    for _ in range(3):
        nq = rnd.randrange(network.num_nodes)
        assert_same_result(
            road.range(nq, radius), brute_range(network, objects, nq, radius)
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_predicate_equivalence(seed):
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 40), rnd.randint(0, 20))
    objects = random_objects(rnd, network, rnd.randint(2, 10), with_attrs=True)
    road = ROAD.build(network, levels=2, fanout=4)
    road.attach_objects(objects)
    pred = Predicate.of(type="a")
    for _ in range(3):
        nq = rnd.randrange(network.num_nodes)
        assert_same_result(
            road.knn(nq, 3, pred), brute_knn(network, objects, nq, 3, pred)
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_equivalence_after_weight_changes(seed):
    """Maintenance invariant: queries stay exact after edge re-weighting."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 40), rnd.randint(2, 20))
    objects = random_objects(rnd, network, rnd.randint(1, 8))
    road = ROAD.build(network, levels=rnd.randint(1, 3), fanout=4)
    directory = road.attach_objects(objects)
    edges = list(network.edges())
    for _ in range(4):
        u, v, _ = edges[rnd.randrange(len(edges))]
        road.update_edge_distance(
            u, v, network.edge_distance(u, v) * rnd.choice([0.2, 0.6, 1.8, 5.0])
        )
        nq = rnd.randrange(network.num_nodes)
        # Oracle uses the directory's objects: offsets rescale with the edge.
        assert_same_result(
            road.knn(nq, 3), brute_knn(network, directory.objects, nq, 3)
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_equivalence_after_object_churn(seed):
    """Insert/delete/update objects and re-verify against the oracle."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 35), rnd.randint(0, 15))
    objects = random_objects(rnd, network, 5)
    road = ROAD.build(network, levels=2, fanout=4)
    directory = road.attach_objects(objects)
    edges = sorted((u, v) for u, v, _ in network.edges())
    live = set(objects.ids())
    next_id = max(live) + 1
    for _ in range(6):
        action = rnd.choice(["insert", "delete", "update"])
        if action == "insert" or not live:
            u, v = edges[rnd.randrange(len(edges))]
            obj = SpatialObject(
                next_id, (u, v), rnd.uniform(0, network.edge_distance(u, v))
            )
            directory.insert(obj)
            live.add(next_id)
            next_id += 1
        elif action == "delete":
            victim = rnd.choice(sorted(live))
            directory.delete(victim)
            live.remove(victim)
        else:
            target = rnd.choice(sorted(live))
            directory.update_attrs(target, {"type": rnd.choice(["a", "b"])})
        nq = rnd.randrange(network.num_nodes)
        assert_same_result(
            road.knn(nq, 3), brute_knn(network, directory.objects, nq, 3)
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_equivalence_after_structure_changes(seed):
    """Add/remove edges (with promotions) and re-verify."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 30), rnd.randint(2, 10))
    objects = random_objects(rnd, network, 4)
    road = ROAD.build(network, levels=2, fanout=4)
    road.attach_objects(objects)
    added = []
    for _ in range(4):
        if rnd.random() < 0.6 or not added:
            u = rnd.randrange(network.num_nodes)
            v = rnd.randrange(network.num_nodes)
            if u == v or network.has_edge(u, v):
                continue
            road.add_edge(u, v, rnd.uniform(0.5, 10.0))
            added.append((u, v))
        else:
            u, v = added.pop()
            road.remove_edge(u, v)
        road.hierarchy.validate()
        nq = rnd.randrange(network.num_nodes)
        assert_same_result(road.knn(nq, 3), brute_knn(network, objects, nq, 3))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), reduce=st.booleans())
def test_reduction_toggle_equivalence(seed, reduce):
    """Lemma-4 reduction must not change any query answer."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 40), rnd.randint(0, 20))
    objects = random_objects(rnd, network, 6)
    road = ROAD.build(network, levels=3, fanout=4, reduce_shortcuts=reduce)
    road.attach_objects(objects)
    for _ in range(3):
        nq = rnd.randrange(network.num_nodes)
        assert_same_result(road.knn(nq, 4), brute_knn(network, objects, nq, 4))
