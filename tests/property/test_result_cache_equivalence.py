"""Churn-soak equivalence: a cached RoadService is invisible.

The result cache's whole contract is a negative: turning it on must
change *nothing* but latency.  Each soak drives two twin services —
identical network, identical objects, one with ``result_cache=True`` —
through random interleavings of all six maintenance operations
(edge-weight updates, edge addition/removal, object insert/delete/
attr-update) and batches covering all six query kinds.  After every
batch:

* the cached service's answers are byte-identical to the uncached
  twin's, on the **populate** pass and again on the **hit** pass (the
  second pass re-submits the same batch so the answers really come out
  of the cache), and
* the cached side's snapshot(s) show ``snapshot_divergences == []``
  against a fresh freeze of the uncached twin's maintained road — the
  invalidation hooks never skipped a patch.

Backends parametrise the unsharded soak; the replicated soak runs the
cache above both thread shards and the shared-memory process pool.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frozen_backends import (
    installed_backends,
    shared_memory_available,
)
from repro.eval.metrics import snapshot_divergences
from repro.objects.model import SpatialObject
from repro.queries.types import (
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    RouteKNNQuery,
    ServiceAreaQuery,
)
from repro.serving import RoadService, ServiceConfig
from tests.conftest import random_connected_network
from tests.property.test_frozen_equivalence import random_objects
from tests.serving.test_service import gather_submits

_PREDICATES = (None, Predicate.of(type="a"), Predicate.of(type="b"))


def _random_query(rnd, network, kind):
    node = rnd.randrange(network.num_nodes)
    predicate = rnd.choice(_PREDICATES)
    kwargs = {} if predicate is None else {"predicate": predicate}
    if kind == 0:
        return KNNQuery(node, rnd.randint(1, 4), **kwargs)
    if kind == 1:
        return RangeQuery(node, rnd.uniform(2.0, 30.0), **kwargs)
    if kind == 2:
        nodes = tuple(
            rnd.randrange(network.num_nodes) for _ in range(rnd.randint(2, 3))
        )
        return AggregateKNNQuery(
            nodes, rnd.randint(1, 3), agg=rnd.choice(["sum", "max", "min"]),
            **kwargs,
        )
    if kind == 3:
        sources = tuple(
            rnd.randrange(network.num_nodes) for _ in range(2)
        )
        targets = tuple(
            rnd.randrange(network.num_nodes) for _ in range(2)
        )
        return ODMatrixQuery(sources, targets)
    if kind == 4:
        breaks = tuple(
            rnd.uniform(2.0, 30.0) for _ in range(rnd.randint(1, 2))
        )
        return ServiceAreaQuery(node, breaks, **kwargs)
    path = tuple(
        rnd.randrange(network.num_nodes) for _ in range(rnd.randint(2, 3))
    )
    return RouteKNNQuery(path, rnd.randint(1, 3), **kwargs)


def _query_batch(rnd, network):
    """One of each kind plus a few repeats — no query kind is exempt."""
    queries = [_random_query(rnd, network, kind) for kind in range(6)]
    queries.extend(
        _random_query(rnd, network, rnd.randrange(6)) for _ in range(3)
    )
    rnd.shuffle(queries)
    return queries


def _maintain_twins(rnd, network, cached, uncached, added):
    """Apply one random maintenance op to both services identically.

    Returns False when the drawn op was inapplicable this step (e.g.
    nothing left to delete) — the caller just proceeds to the queries.
    """
    action = rnd.randrange(6)
    edges = sorted((u, v) for u, v, _ in cached.executor.network.edges())
    directory = cached.executor.road.directory()
    if action == 0:  # congestion / clearing
        u, v = edges[rnd.randrange(len(edges))]
        factor = rnd.choice([0.3, 0.5, 1.8, 3.0])
        distance = cached.executor.network.edge_distance(u, v) * factor
        cached.update_edge_distance(u, v, distance)
        uncached.update_edge_distance(u, v, distance)
    elif action == 1:  # new listing
        u, v = edges[rnd.randrange(len(edges))]
        object_id = directory.objects.next_id()
        delta = rnd.uniform(0.0, cached.executor.network.edge_distance(u, v))
        attrs = {"type": rnd.choice(["a", "b"])}
        for service in (cached, uncached):
            service.insert_object(
                SpatialObject(object_id, (u, v), delta, dict(attrs))
            )
    elif action == 2:  # delisting (keep at least one object around)
        ids = directory.objects.ids()
        if len(ids) <= 1:
            return False
        object_id = ids[rnd.randrange(len(ids))]
        cached.delete_object(object_id)
        uncached.delete_object(object_id)
    elif action == 3:  # re-tagging
        ids = directory.objects.ids()
        if not ids:
            return False
        object_id = ids[rnd.randrange(len(ids))]
        attrs = {"type": rnd.choice(["a", "b"])}
        cached.update_object_attrs(object_id, dict(attrs))
        uncached.update_object_attrs(object_id, dict(attrs))
    elif action == 4:  # new road segment (structural)
        for _ in range(20):
            a = rnd.randrange(network.num_nodes)
            b = rnd.randrange(network.num_nodes)
            if a != b and not cached.executor.network.has_edge(a, b):
                break
        else:
            return False
        distance = rnd.uniform(0.5, 8.0)
        cached.add_edge(a, b, distance)
        uncached.add_edge(a, b, distance)
        added.append((a, b))
    else:  # closing a previously-opened segment (structural)
        while added:
            u, v = added.pop()
            if directory.objects.on_edge(u, v):
                continue
            cached.remove_edge(u, v)
            uncached.remove_edge(u, v)
            return True
        return False
    return True


def _soak(seed, config_kwargs, *, steps=5):
    rnd = random.Random(seed)
    network = random_connected_network(
        rnd, rnd.randint(15, 30), rnd.randint(2, 12)
    )
    seed_objects = rnd.randrange(2, 8)
    object_seed = rnd.randrange(1 << 30)
    base = dict(
        mode="frozen", levels=rnd.randint(1, 3), max_batch=64,
    )
    base.update(config_kwargs)
    cached = RoadService.build(
        network.copy(),
        random_objects(random.Random(object_seed), network, seed_objects),
        config=ServiceConfig(result_cache=True, cache_budget=32, **base),
    )
    uncached = RoadService.build(
        network.copy(),
        random_objects(random.Random(object_seed), network, seed_objects),
        config=ServiceConfig(**base),
    )
    added = []
    try:
        for _step in range(steps):
            _maintain_twins(rnd, network, cached, uncached, added)
            batch = _query_batch(rnd, network)
            expected = uncached.run_many(batch)
            # Populate pass, then hit pass: both byte-identical.
            assert gather_submits(cached, batch) == expected
            assert gather_submits(cached, batch) == expected
            # The cached side's snapshots track the uncached twin's
            # maintained road exactly — the cache never ate a patch.
            fresh = uncached.executor.road.freeze()
            snapshots = cached.replicas or [cached.executor.frozen]
            for snapshot in snapshots:
                divergences = snapshot_divergences(
                    rnd, snapshot, fresh, probes=2, k=3, max_radius=20.0
                )
                assert divergences == [], divergences
        counters = cached.stats()["result_cache"]
        assert counters["hits"] > 0  # the hit pass really hit
    finally:
        cached.close()
        uncached.close()


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_churn_soak_unsharded(backend, seed):
    """All six maintenance ops x all six query kinds, per backend."""
    _soak(seed, {"backend": backend})


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_churn_soak_thread_replicas(seed):
    """The cache sits above thread shards; broadcasts still invalidate."""
    _soak(seed, {"replicas": 2, "replica_mode": "thread"})


@pytest.mark.skipif(
    not shared_memory_available(),
    reason="host has no POSIX shared memory (/dev/shm)",
)
@settings(max_examples=3, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_churn_soak_process_replicas(seed):
    """The cache sits above the shared-memory process pool."""
    _soak(seed, {"replicas": 2, "replica_mode": "process"}, steps=3)
