"""Property-based checks: patched FrozenRoad == fresh freeze().

The incremental-freeze contract: after any interleaving of edge-weight
updates, object churn and structural changes, a snapshot kept current with
:meth:`FrozenRoad.apply` must be byte-identical — results, tie order, and
SearchStats — to a snapshot frozen from scratch, whether each update was
delta-patched or fell back to a full recompile.

The churn tests run once per installed array backend: the snapshot under
maintenance is compiled into that backend while the fresh comparator stays
on the default, so the probes also pin cross-backend byte-identity of the
slice-patching paths.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.road_adapter import ROADEngine
from repro.core.framework import ROAD
from repro.core.frozen_backends import installed_backends
from repro.eval.metrics import snapshot_divergences
from repro.objects.model import SpatialObject
from repro.queries.types import Predicate
from tests.conftest import random_connected_network
from tests.oracle import assert_same_result, brute_knn
from tests.property.test_frozen_equivalence import random_objects

_OUTCOMES = ("patched", "recompiled")


def _assert_snapshots_identical(rnd, patched, fresh, probes=3, k=4):
    # One contract, defined once: eval.metrics.snapshot_divergences is the
    # same probe the maintenance bench counts violations with.
    divergences = snapshot_divergences(
        rnd, patched, fresh, probes=probes, k=k, max_radius=20.0
    )
    assert not divergences, divergences


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_weight_updates_patch_equivalence(backend, seed):
    """Edge-weight churn: the patcher's bread and butter."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 45), rnd.randint(2, 20))
    objects = random_objects(rnd, network, rnd.randint(1, 10))
    road = ROAD.build(network, levels=rnd.randint(1, 3), fanout=4)
    road.attach_objects(objects)
    frozen = road.freeze(backend=backend)
    edges = sorted((u, v) for u, v, _ in network.edges())
    for _ in range(5):
        u, v = edges[rnd.randrange(len(edges))]
        factor = rnd.choice([0.2, 0.5, 1.5, 3.0])
        report = road.update_edge_distance(
            u, v, network.edge_distance(u, v) * factor
        )
        assert frozen.apply(report) in _OUTCOMES
        _assert_snapshots_identical(rnd, frozen, road.freeze())


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mixed_interleaving_patch_equivalence(backend, seed):
    """Random interleavings of weight updates, object churn and queries."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 40), rnd.randint(2, 15))
    objects = random_objects(rnd, network, rnd.randint(2, 8))
    road = ROAD.build(network, levels=rnd.randint(1, 3), fanout=4)
    directory = road.attach_objects(objects)
    frozen = road.freeze(backend=backend)
    edges = sorted((u, v) for u, v, _ in network.edges())
    pred = Predicate.of(type="a")
    for _step in range(6):
        action = rnd.randrange(3)
        if action == 0:  # congestion / clearing
            u, v = edges[rnd.randrange(len(edges))]
            report = road.update_edge_distance(
                u, v, network.edge_distance(u, v) * rnd.choice([0.4, 2.2])
            )
        elif action == 1:  # new listing
            u, v = edges[rnd.randrange(len(edges))]
            report = road.insert_object(
                SpatialObject(
                    directory.objects.next_id(), (u, v),
                    rnd.uniform(0, network.edge_distance(u, v)),
                    {"type": rnd.choice(["a", "b"])},
                )
            )
        else:  # delisting (keep at least one object around)
            ids = directory.objects.ids()
            if len(ids) <= 1:
                continue
            report = road.delete_object(ids[rnd.randrange(len(ids))])
        assert frozen.apply(report) in _OUTCOMES
        fresh = road.freeze()
        _assert_snapshots_identical(rnd, frozen, fresh)
        nq = rnd.randrange(network.num_nodes)
        got = frozen.knn(nq, 3, pred)
        assert got == road.knn(nq, 3, pred)  # and the charged path agrees
        assert_same_result(got, brute_knn(network, directory.objects, nq, 3, pred))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_structural_fallback_equivalence(seed):
    """Forced-fallback cases: edge addition/removal must recompile cleanly."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 35), rnd.randint(3, 12))
    objects = random_objects(rnd, network, rnd.randint(1, 6), with_attrs=False)
    road = ROAD.build(network, levels=rnd.randint(1, 3), fanout=4)
    directory = road.attach_objects(objects)
    frozen = road.freeze()
    added = []
    for _ in range(3):
        if added and rnd.random() < 0.4:
            u, v = added.pop()
            if directory.objects.on_edge(u, v):
                continue
            report = road.remove_edge(u, v)
        else:
            while True:
                a = rnd.randrange(network.num_nodes)
                b = rnd.randrange(network.num_nodes)
                if a != b and not network.has_edge(a, b):
                    break
            report = road.add_edge(a, b, rnd.uniform(0.5, 8.0))
            added.append((a, b))
        assert report.structural
        assert frozen.apply(report) == "recompiled"
        _assert_snapshots_identical(rnd, frozen, road.freeze())
        nq = rnd.randrange(network.num_nodes)
        assert_same_result(
            frozen.knn(nq, 3), brute_knn(network, directory.objects, nq, 3)
        )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_patch_mode_engine_serves_like_charged(seed):
    """The engine lifecycle end to end: patch-mode frozen == charged."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 35), rnd.randint(2, 12))
    objects = random_objects(rnd, network, rnd.randint(2, 8))
    charged = ROADEngine(network.copy(), objects, levels=2, mode="charged")
    patched = ROADEngine(
        network.copy(), objects, levels=2, mode="frozen",
        maintenance_mode="patch",
    )
    edges = sorted((u, v) for u, v, _ in network.edges())
    for _ in range(4):
        u, v = edges[rnd.randrange(len(edges))]
        factor = rnd.choice([0.5, 2.0])
        new_distance = charged.network.edge_distance(u, v) * factor
        charged.update_edge_distance(u, v, new_distance)
        patched.update_edge_distance(u, v, new_distance)
        nq = rnd.randrange(network.num_nodes)
        assert patched.knn(nq, 4) == charged.knn(nq, 4)
        assert patched.range(nq, 10.0) == charged.range(nq, 10.0)
    counters = patched.stats()["maintenance"]
    assert counters["updates"] == 4
    assert counters["patches_applied"] + counters["patch_fallbacks"] == 4
