"""Property-based check: persistence is invisible to the frozen contract.

Two persistence layers, one contract:

* freeze → ``save_road`` → ``load_road`` → freeze again must yield a
  snapshot with ``snapshot_divergences == []`` against the original —
  per installed array backend and per attached directory;
* freeze → ``save_snapshot`` → ``load_snapshot`` (the zero-copy mmap
  cold-start path, and every materialising backend) must serve
  identically too — *without* recompiling — and the snapshot bytes must
  be canonical: saving from any backend, or re-saving from a loaded
  snapshot, produces the identical file.

The probe is the same byte-identity contract the patch/equivalence
suites enforce (results, tie order, SearchStats, predicate-filtered and
aggregate queries), so a persistence bug cannot hide behind a weaker
comparison.  Corrupted snapshots (flipped payload byte, truncation,
foreign magic) must be rejected with :class:`SerializeError` before any
unpickling happens.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frozen_backends import installed_backends
from repro.core.serialize import (
    SerializeError,
    load_road,
    load_snapshot,
    save_road,
    save_snapshot,
)
from repro.eval.metrics import snapshot_divergences
from tests.property.test_multi_directory_equivalence import (
    DIRECTORIES,
    _build_multi_road,
)


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_round_trip_diverges_nowhere(backend, seed, tmp_path_factory):
    rnd = random.Random(seed)
    _network, road, _directories = _build_multi_road(rnd)
    path = tmp_path_factory.mktemp("idx") / f"round-{backend}-{seed}.roadidx"

    written = save_road(road, path)
    assert written == path.stat().st_size > 0
    loaded = load_road(path)

    original = road.freeze(backend=backend)
    reloaded = loaded.freeze(backend=backend)
    assert reloaded.directory_names == original.directory_names

    probe = random.Random(seed + 1)
    for name in DIRECTORIES:
        divergences = snapshot_divergences(
            probe,
            reloaded,
            road.freeze(directory=name, backend=backend),
            probes=2,
            k=4,
            max_radius=20.0,
            directory=name,
        )
        assert divergences == [], (backend, name, divergences)

    # The combined snapshots also agree with each other on their defaults.
    assert snapshot_divergences(
        random.Random(seed + 2), reloaded, original, probes=2, k=4,
        max_radius=20.0,
    ) == []


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_snapshot_round_trip_diverges_nowhere(backend, seed, tmp_path_factory):
    rnd = random.Random(seed)
    _network, road, _directories = _build_multi_road(rnd)
    path = tmp_path_factory.mktemp("snp") / f"snap-{backend}-{seed}.roadsnp"

    original = road.freeze(backend=backend)
    written = save_snapshot(original, path)
    assert written == path.stat().st_size > 0

    # Cold start: mmap the file, serve without freezing or recompiling.
    cold = load_snapshot(path)
    assert cold.backend == "mmap"
    assert cold.directory_names == original.directory_names
    probe = random.Random(seed + 1)
    for name in DIRECTORIES:
        divergences = snapshot_divergences(
            probe, cold, road.freeze(directory=name, backend=backend),
            probes=2, k=4, max_radius=20.0, directory=name,
        )
        assert divergences == [], (backend, name, divergences)

    # Materialise into this backend: same contract, and re-saving (from
    # the materialised copy *and* from the mmap view) reproduces the
    # canonical bytes — the format is backend-free.
    warm = load_snapshot(path, backend=backend)
    assert snapshot_divergences(
        random.Random(seed + 2), warm, original, probes=2, k=4,
        max_radius=20.0,
    ) == []
    canonical = path.read_bytes()
    resaved = path.with_suffix(".resaved")
    for source in (warm, cold):
        save_snapshot(source, resaved)
        assert resaved.read_bytes() == canonical, backend

    for frozen in (cold, warm, original):
        frozen.close()


def test_load_rejects_invalid_mask_budget(tmp_path):
    """Every construction path enforces the mask-budget floor.

    ``from_parts`` (behind ``load_snapshot``) shares ``__init__``'s
    validation: a budget below 1 would make the mask-cache LRU pop from
    an empty dict on the first cached predicate.
    """
    _network, road, _directories = _build_multi_road(random.Random(3))
    path = tmp_path / "good.roadsnp"
    frozen = road.freeze()
    save_snapshot(frozen, path)
    frozen.close()
    with pytest.raises(ValueError, match="mask_budget"):
        load_snapshot(path, mask_budget=0)
    with pytest.raises(ValueError, match="mask_budget"):
        road.freeze(mask_budget=0)


def test_snapshot_rejects_corruption(tmp_path):
    _network, road, _directories = _build_multi_road(random.Random(7))
    path = tmp_path / "good.roadsnp"
    frozen = road.freeze()
    save_snapshot(frozen, path)
    frozen.close()
    blob = bytearray(path.read_bytes())

    # A flipped payload byte fails the checksum before any unpickle.
    flipped = tmp_path / "flipped.roadsnp"
    corrupt = bytearray(blob)
    corrupt[-1] ^= 0xFF
    flipped.write_bytes(corrupt)
    with pytest.raises(SerializeError, match="checksum"):
        load_snapshot(flipped)

    # A truncated payload is rejected on length, not parsed partially.
    truncated = tmp_path / "truncated.roadsnp"
    truncated.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(SerializeError):
        load_snapshot(truncated)

    # Foreign bytes are not a snapshot at all.
    foreign = tmp_path / "foreign.roadsnp"
    foreign.write_bytes(b"PNG\x0d\x0a\x1a\x0a" + bytes(64))
    with pytest.raises(SerializeError, match="not a ROAD snapshot"):
        load_snapshot(foreign)
