"""Property-based check: persistence is invisible to the frozen contract.

freeze → ``save_road`` → ``load_road`` → freeze again must yield a
snapshot with ``snapshot_divergences == []`` against the original — per
installed array backend and per attached directory.  The probe is the
same byte-identity contract the patch/equivalence suites enforce
(results, tie order, SearchStats, predicate-filtered and aggregate
queries), so a persistence bug cannot hide behind a weaker comparison.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frozen_backends import installed_backends
from repro.core.serialize import load_road, save_road
from repro.eval.metrics import snapshot_divergences
from tests.property.test_multi_directory_equivalence import (
    DIRECTORIES,
    _build_multi_road,
)


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_round_trip_diverges_nowhere(backend, seed, tmp_path_factory):
    rnd = random.Random(seed)
    _network, road, _directories = _build_multi_road(rnd)
    path = tmp_path_factory.mktemp("idx") / f"round-{backend}-{seed}.roadidx"

    written = save_road(road, path)
    assert written == path.stat().st_size > 0
    loaded = load_road(path)

    original = road.freeze(backend=backend)
    reloaded = loaded.freeze(backend=backend)
    assert reloaded.directory_names == original.directory_names

    probe = random.Random(seed + 1)
    for name in DIRECTORIES:
        divergences = snapshot_divergences(
            probe,
            reloaded,
            road.freeze(directory=name, backend=backend),
            probes=2,
            k=4,
            max_radius=20.0,
            directory=name,
        )
        assert divergences == [], (backend, name, divergences)

    # The combined snapshots also agree with each other on their defaults.
    assert snapshot_divergences(
        random.Random(seed + 2), reloaded, original, probes=2, k=4,
        max_radius=20.0,
    ) == []
