"""Property-based checks: FrozenRoad == charged path == brute force.

The compiled fast path must return *byte-identical* results to the charged
search on the same snapshot (including tie order), match the brute-force
Dijkstra oracle, and never touch the pager while answering.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import ROAD
from repro.core.object_abstract import counting_abstract, exact_abstract
from repro.objects.model import ObjectSet, SpatialObject
from repro.queries.types import Predicate
from tests.conftest import random_connected_network
from tests.oracle import assert_same_result, brute_knn, brute_range


def random_objects(rnd, network, count, with_attrs=True):
    objects = ObjectSet()
    edges = sorted((u, v) for u, v, _ in network.edges())
    for object_id in range(count):
        u, v = edges[rnd.randrange(len(edges))]
        delta = rnd.uniform(0.0, network.edge_distance(u, v))
        attrs = {"type": rnd.choice(["a", "b"])} if with_attrs else {}
        objects.add(SpatialObject(object_id, (u, v), delta, attrs))
    return objects


def _assert_no_pager_traffic(road, run):
    before = road.pager.stats.snapshot()
    out = run()
    diff = road.pager.stats.diff(before)
    assert (diff.reads, diff.writes, diff.hits, diff.misses) == (0, 0, 0, 0), (
        f"frozen query touched the pager: {diff}"
    )
    return out


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    levels=st.integers(1, 4),
    fanout=st.sampled_from([2, 4]),
    k=st.integers(1, 6),
)
def test_frozen_knn_equivalence(seed, levels, fanout, k):
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(12, 60), rnd.randint(0, 30))
    objects = random_objects(rnd, network, rnd.randint(1, 12))
    road = ROAD.build(network, levels=levels, fanout=fanout)
    road.attach_objects(objects)
    frozen = road.freeze()
    for _ in range(4):
        nq = rnd.randrange(network.num_nodes)
        got = _assert_no_pager_traffic(road, lambda: frozen.knn(nq, k))
        assert got == road.knn(nq, k)  # byte-identical to the charged path
        assert_same_result(got, brute_knn(network, objects, nq, k))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), radius=st.floats(0.0, 40.0))
def test_frozen_range_equivalence(seed, radius):
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(12, 50), rnd.randint(0, 25))
    objects = random_objects(rnd, network, rnd.randint(1, 10))
    road = ROAD.build(network, levels=rnd.randint(1, 3), fanout=4)
    road.attach_objects(objects)
    frozen = road.freeze()
    for _ in range(3):
        nq = rnd.randrange(network.num_nodes)
        got = _assert_no_pager_traffic(road, lambda: frozen.range(nq, radius))
        assert got == road.range(nq, radius)
        assert_same_result(got, brute_range(network, objects, nq, radius))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), counting=st.booleans())
def test_frozen_predicate_equivalence(seed, counting):
    """Predicate pruning through the snapshot masks, both abstract kinds."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 40), rnd.randint(0, 20))
    objects = random_objects(rnd, network, rnd.randint(2, 10))
    road = ROAD.build(network, levels=2, fanout=4)
    road.attach_objects(
        objects,
        abstract_factory=counting_abstract if counting else exact_abstract,
    )
    frozen = road.freeze()
    pred = Predicate.of(type="a")
    for _ in range(3):
        nq = rnd.randrange(network.num_nodes)
        got = _assert_no_pager_traffic(road, lambda: frozen.knn(nq, 3, pred))
        assert got == road.knn(nq, 3, pred)
        assert_same_result(got, brute_knn(network, objects, nq, 3, pred))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_refreeze_after_maintenance_equivalence(seed):
    """A fresh freeze after updates must track the live index exactly."""
    rnd = random.Random(seed)
    network = random_connected_network(rnd, rnd.randint(15, 40), rnd.randint(2, 20))
    objects = random_objects(rnd, network, rnd.randint(1, 8), with_attrs=False)
    road = ROAD.build(network, levels=rnd.randint(1, 3), fanout=4)
    directory = road.attach_objects(objects)
    edges = list(network.edges())
    for _ in range(3):
        u, v, _ = edges[rnd.randrange(len(edges))]
        road.update_edge_distance(
            u, v, network.edge_distance(u, v) * rnd.choice([0.3, 1.7, 4.0])
        )
        frozen = road.freeze()
        nq = rnd.randrange(network.num_nodes)
        got = _assert_no_pager_traffic(road, lambda: frozen.knn(nq, 3))
        assert got == road.knn(nq, 3)
        assert_same_result(got, brute_knn(network, directory.objects, nq, 3))
