"""Property: all four engines agree on random networks and workloads."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    DistanceIndexEngine,
    EuclideanEngine,
    NetworkExpansionEngine,
    ROADEngine,
)
from repro.objects.model import ObjectSet, SpatialObject
from tests.conftest import random_connected_network
from tests.oracle import assert_same_result, brute_knn, brute_range


def euclidean_sound_network(rnd, num_nodes, extra_edges):
    """Random connected network whose weights dominate Euclidean length."""
    network = random_connected_network(rnd, num_nodes, extra_edges)
    for u, v, _ in list(network.edges()):
        network.update_edge(u, v, network.euclidean(u, v) + rnd.uniform(0.1, 3.0))
    return network


def random_objects(rnd, network, count):
    objects = ObjectSet()
    edges = sorted((u, v) for u, v, _ in network.edges())
    for object_id in range(count):
        u, v = edges[rnd.randrange(len(edges))]
        objects.add(
            SpatialObject(
                object_id, (u, v), rnd.uniform(0, network.edge_distance(u, v))
            )
        )
    return objects


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_four_engines_agree_on_knn(seed):
    rnd = random.Random(seed)
    network = euclidean_sound_network(rnd, rnd.randint(12, 30), rnd.randint(0, 15))
    objects = random_objects(rnd, network, rnd.randint(1, 8))
    engines = [
        NetworkExpansionEngine(network.copy(), objects),
        EuclideanEngine(network.copy(), objects),
        DistanceIndexEngine(network.copy(), objects),
        ROADEngine(network.copy(), objects, levels=2),
    ]
    for _ in range(3):
        nq = rnd.randrange(network.num_nodes)
        k = rnd.randint(1, 4)
        expected = brute_knn(network, objects, nq, k)
        for engine in engines:
            assert_same_result(engine.knn(nq, k), expected)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), radius=st.floats(0.0, 30.0))
def test_four_engines_agree_on_range(seed, radius):
    rnd = random.Random(seed)
    network = euclidean_sound_network(rnd, rnd.randint(12, 25), rnd.randint(0, 12))
    objects = random_objects(rnd, network, rnd.randint(1, 6))
    engines = [
        NetworkExpansionEngine(network.copy(), objects),
        EuclideanEngine(network.copy(), objects),
        DistanceIndexEngine(network.copy(), objects),
        ROADEngine(network.copy(), objects, levels=2),
    ]
    nq = rnd.randrange(network.num_nodes)
    expected = brute_range(network, objects, nq, radius)
    for engine in engines:
        assert_same_result(engine.range(nq, radius), expected)
