"""Property-based checks: one multi-directory FrozenRoad == N fresh freezes.

The multi-directory contract: a snapshot compiling several Association
Directories over shared entry arrays, kept current with
:meth:`FrozenRoad.apply` through arbitrary interleavings of object churn
(insert / delete / update, spread across the directories) and network
maintenance (edge-weight changes, edge addition/removal), must stay
byte-identical — per directory — to a dedicated single-directory
``freeze()`` of that directory, after every batch of reports.

``snapshot_divergences`` (the same probe the memory bench counts
violations with) defines byte-identity: results, tie order, SearchStats,
predicate-filtered and aggregate queries.  The churn soak runs once per
installed array backend.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import ROAD
from repro.core.frozen_backends import installed_backends
from repro.eval.metrics import snapshot_divergences
from repro.objects.model import SpatialObject
from tests.conftest import random_connected_network
from tests.oracle import assert_same_result, brute_knn
from tests.property.test_frozen_equivalence import random_objects

DIRECTORIES = ("objects", "hotels", "fuel")

_OUTCOMES = ("patched", "recompiled")


def _build_multi_road(rnd):
    network = random_connected_network(
        rnd, rnd.randint(15, 40), rnd.randint(2, 15)
    )
    road = ROAD.build(network, levels=rnd.randint(1, 3), fanout=4)
    directories = {}
    for name in DIRECTORIES:
        objects = random_objects(rnd, network, rnd.randint(1, 6))
        directories[name] = road.attach_objects(objects, name=name)
    return network, road, directories


def _assert_matches_single_freezes(rnd, road, frozen, probes=2, k=4):
    """Zero divergences between the combined snapshot and each directory's
    dedicated fresh freeze — the acceptance criterion, verbatim."""
    for name in DIRECTORIES:
        fresh = road.freeze(directory=name)
        divergences = snapshot_divergences(
            rnd, frozen, fresh, probes=probes, k=k, max_radius=20.0,
            directory=name,
        )
        assert divergences == [], (name, divergences)


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_multi_directory_churn_soak(backend, seed):
    """Randomised insert/delete/update/add_edge/remove_edge interleavings
    across three directories; the combined snapshot never diverges."""
    rnd = random.Random(seed)
    network, road, directories = _build_multi_road(rnd)
    frozen = road.freeze(backend=backend)
    assert frozen.directory_names == list(DIRECTORIES)
    edges = sorted((u, v) for u, v, _ in network.edges())
    added = []
    for _ in range(4):  # batches of reports
        for _ in range(rnd.randint(1, 3)):  # one batch
            name = rnd.choice(DIRECTORIES)
            directory = directories[name]
            action = rnd.randrange(6)
            if action == 0:  # new listing in one provider
                u, v = edges[rnd.randrange(len(edges))]
                report = road.insert_object(
                    SpatialObject(
                        directory.objects.next_id(), (u, v),
                        rnd.uniform(0, network.edge_distance(u, v)),
                        {"type": rnd.choice(["a", "b"])},
                    ),
                    directory=name,
                )
            elif action == 1:  # delisting (keep one object around)
                ids = directory.objects.ids()
                if len(ids) <= 1:
                    continue
                report = road.delete_object(
                    ids[rnd.randrange(len(ids))], directory=name
                )
            elif action == 2:  # attribute update
                ids = directory.objects.ids()
                report = road.update_object_attrs(
                    ids[rnd.randrange(len(ids))],
                    {"type": rnd.choice(["a", "b", "c"])},
                    directory=name,
                )
            elif action == 3:  # congestion / clearing
                u, v = edges[rnd.randrange(len(edges))]
                report = road.update_edge_distance(
                    u, v,
                    network.edge_distance(u, v) * rnd.choice([0.4, 2.2]),
                )
            elif action == 4:  # new road segment
                for _attempt in range(20):
                    a = rnd.randrange(network.num_nodes)
                    b = rnd.randrange(network.num_nodes)
                    if a != b and not network.has_edge(a, b):
                        break
                else:
                    continue
                report = road.add_edge(a, b, rnd.uniform(0.5, 8.0))
                added.append((a, b))
            else:  # closing a previously added segment
                if not added:
                    continue
                u, v = added.pop()
                if any(
                    d.objects.on_edge(u, v) for d in directories.values()
                ):
                    continue
                report = road.remove_edge(u, v)
            assert frozen.apply(report) in _OUTCOMES
        # After every batch: the combined snapshot matches a fresh
        # single-directory freeze of every directory, byte-identically.
        _assert_matches_single_freezes(rnd, road, frozen)


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_multi_directory_matches_charged_and_oracle(backend, seed):
    """Each directory of a combined snapshot answers like the charged path
    on that directory — and like the brute-force oracle."""
    rnd = random.Random(seed)
    network, road, directories = _build_multi_road(rnd)
    frozen = road.freeze(backend=backend)
    for _ in range(3):
        nq = rnd.randrange(network.num_nodes)
        for name in DIRECTORIES:
            got = frozen.knn(nq, 3, directory=name)
            assert got == road.knn(nq, 3, directory=name)
            assert_same_result(
                got, brute_knn(network, directories[name].objects, nq, 3)
            )


@pytest.mark.parametrize("backend", installed_backends())
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_object_churn_in_one_directory_isolated(backend, seed):
    """Churn in one provider must never bleed into another's spans: the
    untouched directories stay byte-identical without re-export."""
    rnd = random.Random(seed)
    network, road, directories = _build_multi_road(rnd)
    frozen = road.freeze(backend=backend)
    edges = sorted((u, v) for u, v, _ in network.edges())
    before = {
        name: [frozen.knn(n, 3, directory=name) for n in range(0, network.num_nodes, 5)]
        for name in DIRECTORIES
    }
    # Insert into exactly one directory and patch.
    target = rnd.choice(DIRECTORIES)
    u, v = edges[rnd.randrange(len(edges))]
    report = road.insert_object(
        SpatialObject(
            directories[target].objects.next_id(), (u, v),
            rnd.uniform(0, network.edge_distance(u, v)), {"type": "a"},
        ),
        directory=target,
    )
    assert report.directory == target
    assert frozen.apply(report) == "patched"
    for name in DIRECTORIES:
        after = [
            frozen.knn(n, 3, directory=name)
            for n in range(0, network.num_nodes, 5)
        ]
        if name == target:
            assert after == [
                road.knn(n, 3, directory=name)
                for n in range(0, network.num_nodes, 5)
            ]
        else:  # untouched providers: answers unchanged
            assert after == before[name]
