"""Directory routing on multi-directory snapshots: the serving contract.

The edge cases the multi-directory refactor must pin down:

* ``directory=None`` on a multi-directory snapshot resolves to the
  *configured* default — never simply the first directory compiled;
* a detached directory raises :class:`UnknownDirectoryError` through
  every serving surface (charged ROAD, refrozen engine, service);
* admission coalescing keys stay per-(directory, predicate), so two
  directories' identical queries never share one result list;
* ``FrozenRoad.directory_names`` / ``default_directory`` are
  authoritative for the serving layer — in particular,
  ``RoadService.run`` on a named directory survives a snapshot refreeze.
"""

import asyncio

import pytest

from repro.baselines.road_adapter import ROADEngine
from repro.core.framework import ROAD
from repro.graph.generators import grid_network
from repro.objects.placement import place_uniform
from repro.queries.types import KNNQuery
from repro.serving import (
    RoadService,
    ServiceConfig,
    UnknownDirectoryError,
)


@pytest.fixture
def network():
    return grid_network(8, 8, seed=3)


@pytest.fixture
def providers(network):
    return {
        "objects": place_uniform(network, 12, seed=8),
        "hotels": place_uniform(network, 9, seed=17),
        "fuel": place_uniform(network, 7, seed=29),
    }


@pytest.fixture
def road(network, providers):
    road = ROAD.build(network.copy(), levels=3)
    for name, objects in providers.items():
        road.attach_objects(objects, name=name)
    return road


def _ids(entries):
    return {entry.object_id for entry in entries}


class TestDefaultResolution:
    def test_default_is_configured_not_first_compiled(self, road, providers):
        """freeze(default=...) wins; None never means "first compiled"."""
        snapshot = road.freeze(
            directories=["hotels", "fuel"], default="fuel"
        )
        assert snapshot.directory_names == ["hotels", "fuel"]
        assert snapshot.default_directory == "fuel"
        got = snapshot.execute(KNNQuery(0, 2))
        assert got == snapshot.execute(KNNQuery(0, 2), directory="fuel")
        assert _ids(got) <= set(providers["fuel"].ids())

    def test_objects_preferred_over_compile_order(self, road, providers):
        """Without an explicit default, "objects" beats compile order."""
        snapshot = road.freeze(directories=["hotels", "objects"])
        assert snapshot.directory_names == ["hotels", "objects"]
        assert snapshot.default_directory == "objects"
        assert _ids(snapshot.execute(KNNQuery(0, 2))) <= set(
            providers["objects"].ids()
        )

    def test_default_must_be_compiled(self, road):
        with pytest.raises(UnknownDirectoryError):
            road.freeze(directories=["hotels"], default="fuel")

    def test_directory_and_directories_conflict(self, road):
        with pytest.raises(ValueError):
            road.freeze(directory="hotels", directories=["fuel"])
        with pytest.raises(ValueError):
            road.freeze(directories=[])
        with pytest.raises(ValueError):
            road.freeze(directories=["hotels", "hotels"])

    def test_service_config_directory_routes_on_multi_snapshot(
        self, road, providers
    ):
        """A service's config.directory picks the span set on a
        multi-directory snapshot; directory=None submits follow it."""
        snapshot = road.freeze()
        service = RoadService(
            snapshot, config=ServiceConfig(directory="hotels")
        )
        try:
            got = service.run(KNNQuery(0, 2))
            assert _ids(got) <= set(providers["hotels"].ids())

            async def go():
                return await service.submit(KNNQuery(0, 2))

            assert asyncio.run(go()) == got
        finally:
            service.close()


class TestDetachedDirectory:
    def test_charged_path_raises_after_detach(self, road):
        assert road.execute(KNNQuery(0, 1), directory="fuel")
        road.detach_objects("fuel")
        with pytest.raises(UnknownDirectoryError) as excinfo:
            road.execute(KNNQuery(0, 1), directory="fuel")
        assert excinfo.value.directory == "fuel"

    def test_engine_refreeze_drops_detached_directory(self, network, providers):
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            providers={"hotels": providers["hotels"]},
        )
        assert engine.execute(KNNQuery(0, 1), directory="hotels")
        engine.detach_objects("hotels")
        # The stale snapshot was invalidated; the refrozen one must not
        # resurrect the detached provider.
        with pytest.raises(UnknownDirectoryError):
            engine.execute(KNNQuery(0, 1), directory="hotels")
        assert engine.directory_names == ["objects"]

    def test_apply_after_detach_raises(self, road, providers):
        """A snapshot compiled over a now-detached directory cannot be
        patched from the live road anymore — it raises *before touching
        any compiled array*, never serving a half-patched span set."""
        snapshot = road.freeze()
        before = {
            name: snapshot.knn(0, 4, directory=name)
            for name in snapshot.directory_names
        }
        u, v, d = next(iter(road.network.edges()))
        road.detach_objects("fuel")
        report = road.update_edge_distance(u, v, d * 2.0)
        with pytest.raises(KeyError):
            snapshot.apply(report)
        # All-or-nothing: the failed apply left the pre-update state.
        for name, want in before.items():
            assert snapshot.knn(0, 4, directory=name) == want

    def test_submit_rejects_detached_directory(self, network, providers):
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            providers={"hotels": providers["hotels"]},
        )
        service = RoadService(engine)
        try:
            engine.detach_objects("hotels")

            async def go():
                with pytest.raises(UnknownDirectoryError):
                    await service.submit(KNNQuery(0, 1), directory="hotels")

            asyncio.run(go())
        finally:
            service.close()


class TestCoalescingKeys:
    def test_identical_queries_to_two_directories_never_coalesce(
        self, network, providers
    ):
        """The admission key is (directory, predicate): the same query
        submitted to two directories must execute per directory and hand
        back different answers — never one shared result list."""
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            providers={"hotels": providers["hotels"]},
        )
        service = RoadService(
            engine, config=ServiceConfig(mode="frozen", max_batch=512)
        )
        try:
            query = KNNQuery(4, 3)

            async def go():
                return await asyncio.gather(
                    service.submit(query, directory="objects"),
                    service.submit(query, directory="hotels"),
                    service.submit(query, directory="objects"),
                )

            first, hotels, twin = asyncio.run(go())
            counters = service.stats()["service"]
            # The two "objects" submits coalesced; the "hotels" one never
            # joined their bucket.
            assert counters["coalesced"] == 1
            assert counters["batches"] == 2
            assert first is not hotels
            assert first == service.run(query, directory="objects")
            assert hotels == service.run(query, directory="hotels")
            assert _ids(hotels) <= set(providers["hotels"].ids())
            assert twin == first and twin is not first
        finally:
            service.close()


class TestAuthoritativeDirectorySurface:
    def test_snapshot_names_are_authoritative(self, road):
        snapshot = road.freeze()
        assert snapshot.directory_names == ["objects", "hotels", "fuel"]
        assert snapshot.check_directory(None) == "objects"
        assert snapshot.check_directory("fuel") == "fuel"
        with pytest.raises(UnknownDirectoryError):
            snapshot.check_directory("parking")

    def test_engine_surfaces_snapshot_directories(self, network, providers):
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            providers={"hotels": providers["hotels"]},
        )
        assert engine.directory_names == ["objects", "hotels"]
        assert engine.default_directory == "objects"
        assert engine.frozen.directory_names == ["objects", "hotels"]

    def test_run_on_named_directory_survives_refreeze(
        self, network, providers
    ):
        """Regression: under the refreeze lifecycle, the lazily rebuilt
        snapshot used to compile only the default directory — a service
        configured for a named provider then 404'd after any update."""
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            maintenance_mode="refreeze",
            providers={"hotels": providers["hotels"]},
        )
        service = RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", maintenance="refreeze", directory="hotels"
            ),
        )
        try:
            before = service.run(KNNQuery(0, 2))
            assert _ids(before) <= set(providers["hotels"].ids())
            u, v, d = next(iter(engine.network.edges()))
            service.update_edge_distance(u, v, d * 2.0)
            assert engine.frozen is None  # snapshot dropped, not patched
            got = service.run(KNNQuery(0, 2))  # lazily re-frozen
            assert engine.frozen is not None
            assert engine.frozen.directory_names == ["objects", "hotels"]
            assert got == engine.road.freeze(directory="hotels").knn(0, 2)
        finally:
            service.close()

    def test_explicit_directories_knob_pins_compile_set(
        self, network, providers
    ):
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            providers={"hotels": providers["hotels"]},
            directories=["objects"],
        )
        assert engine.frozen.directory_names == ["objects"]
        with pytest.raises(UnknownDirectoryError):
            engine.execute(KNNQuery(0, 1), directory="hotels")

    def test_pinned_set_restricts_charged_mode_too(self, network, providers):
        """Regression: the pinned set must hold in both modes — the
        charged road physically serves every attached directory, but an
        unpinned name answering in charged mode while frozen mode 404s
        would make the modes diverge on the same query."""
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="charged",
            providers={"hotels": providers["hotels"]},
            directories=["objects"],
        )
        assert engine.directory_names == ["objects"]
        with pytest.raises(UnknownDirectoryError):
            engine.execute(KNNQuery(0, 1), directory="hotels")
        # ... and on the batch path, which forwards wholesale.
        with pytest.raises(UnknownDirectoryError):
            engine.execute_many([KNNQuery(0, 1)], directory="hotels")

    def test_blank_directories_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_DIRECTORIES", " , ,")
        with pytest.raises(ValueError, match="at least one"):
            ServiceConfig.from_env()

    def test_pinned_config_restricts_bare_executor_sync_path(
        self, road, providers
    ):
        """Regression: a pinned ServiceConfig.directories must restrict
        the sync path of a bare executor too — otherwise run() answers
        from a directory the replica shards 404 on."""
        service = RoadService(
            road, config=ServiceConfig(directories=("objects",))
        )
        with pytest.raises(UnknownDirectoryError):
            service.run(KNNQuery(0, 1), directory="hotels")
        assert service.run(KNNQuery(0, 1), directory="objects")
        service.close()
        # The implicit default faces the same restriction: a pinned set
        # that excludes the executor's default 404s directory-less runs
        # instead of silently serving the unpinned default.
        service = RoadService(
            road, config=ServiceConfig(directories=("hotels",))
        )
        with pytest.raises(UnknownDirectoryError):
            service.run(KNNQuery(0, 1))
        assert service.run(KNNQuery(0, 1), directory="hotels")
        service.close()

    def test_late_attach_inherits_engine_abstract_factory(
        self, network, providers
    ):
        from repro.core.object_abstract import counting_abstract

        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            abstract_factory=counting_abstract,
        )
        engine.attach_objects(providers["hotels"], name="hotels")
        assert (
            engine.road.directory("hotels")._abstract_factory
            is counting_abstract
        )

    def test_unknown_directories_knob_rejected(self, network, providers):
        from repro.baselines.engine import EngineError

        with pytest.raises(EngineError):
            ROADEngine(
                network.copy(),
                providers["objects"],
                levels=2,
                directories=["parking"],
            )
        with pytest.raises(EngineError, match="twice"):
            ROADEngine(
                network.copy(),
                providers["objects"],
                levels=2,
                directories=["objects", "objects"],
            )
        with pytest.raises(ValueError, match="twice"):
            ServiceConfig(directories=("objects", "objects"))

    def test_detaching_serving_directory_rejected_without_shards(
        self, network, providers
    ):
        """The guard holds with replicas=0 too: a detached serving
        directory would break every later run/submit, so it fails fast
        just like the sharded case."""
        from repro.serving import ServiceError

        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            providers={"hotels": providers["hotels"]},
        )
        service = RoadService(
            engine, config=ServiceConfig(mode="frozen", directory="hotels")
        )
        try:
            with pytest.raises(ServiceError, match="serving directory"):
                service.detach_objects("hotels")
            assert service.run(KNNQuery(0, 1))  # still serving hotels
        finally:
            service.close()

    def test_pinned_directories_must_include_default(
        self, network, providers
    ):
        """Regression: a pinned set without "objects" would make frozen
        and charged modes answer directory-less queries from different
        providers — rejected at construction instead."""
        from repro.baselines.engine import EngineError

        with pytest.raises(EngineError, match="default directory"):
            ROADEngine(
                network.copy(),
                providers["objects"],
                levels=2,
                providers={"hotels": providers["hotels"]},
                directories=["hotels"],
            )

    def test_default_directory_cannot_be_detached(self, network, providers):
        from repro.baselines.engine import EngineError

        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            providers={"hotels": providers["hotels"]},
        )
        with pytest.raises(EngineError, match="cannot be detached"):
            engine.detach_objects("objects")
        assert engine.execute(KNNQuery(0, 1))  # still serving

    def test_service_attach_detach_rebuilds_replicas(
        self, network, providers
    ):
        """Directory membership changes reach the shards: attach through
        the service re-freezes them (patch-broadcast cannot grow a
        directory), detach drops it everywhere, and maintenance keeps
        working afterwards."""
        service = RoadService.build(
            network.copy(),
            providers["objects"],
            config=ServiceConfig(mode="frozen", levels=2, replicas=2),
        )
        try:
            assert all(
                replica.directory_names == ["objects"]
                for replica in service.replicas
            )
            service.attach_objects(providers["hotels"], name="hotels")
            assert all(
                replica.directory_names == ["objects", "hotels"]
                for replica in service.replicas
            )
            got = service.run(KNNQuery(0, 2), directory="hotels")
            assert _ids(got) <= set(providers["hotels"].ids())
            service.detach_objects("hotels")
            assert all(
                replica.directory_names == ["objects"]
                for replica in service.replicas
            )
            # The broadcast path survives the membership change.
            u, v, d = next(iter(service.executor.network.edges()))
            service.update_edge_distance(u, v, d * 1.5)
            assert service.run(KNNQuery(0, 2)) == service.executor.execute(
                KNNQuery(0, 2)
            )
        finally:
            service.close()

    def test_detach_with_pinned_directories_keeps_shards_consistent(
        self, network, providers
    ):
        """Regression: shards must re-freeze from the executor's *live*
        directory knob, not the config's snapshot-in-time copy — a
        pinned-set detach used to crash the rebuild and strand the
        shards on the detached provider."""
        service = RoadService.build(
            network.copy(),
            providers["objects"],
            config=ServiceConfig(
                mode="frozen", levels=2, replicas=1,
                directories=("objects", "hotels"),
            ),
            providers={"hotels": providers["hotels"]},
        )
        try:
            assert service.replicas[0].directory_names == [
                "objects", "hotels",
            ]
            service.detach_objects("hotels")
            assert service.replicas[0].directory_names == ["objects"]
            u, v, d = next(iter(service.executor.network.edges()))
            service.update_edge_distance(u, v, d * 1.5)
            assert service.run(KNNQuery(0, 2)) == service.executor.execute(
                KNNQuery(0, 2)
            )
        finally:
            service.close()

    def test_detaching_the_serving_directory_rejected_with_shards(
        self, network, providers
    ):
        """Regression: the detach must fail BEFORE mutating the executor —
        otherwise stale shards keep serving the detached provider while
        the primary raises on it."""
        from repro.serving import ServiceError

        service = RoadService.build(
            network.copy(),
            providers["objects"],
            config=ServiceConfig(
                mode="frozen", levels=2, replicas=1, directory="hotels"
            ),
            providers={"hotels": providers["hotels"]},
        )
        try:
            with pytest.raises(ServiceError, match="serving directory"):
                service.detach_objects("hotels")
            # Nothing mutated: primary and shards still serve hotels.
            assert "hotels" in service.executor.directory_names
            assert service.run(KNNQuery(0, 1))
        finally:
            service.close()

    def test_directory_management_needs_a_road_executor(
        self, network, providers
    ):
        from repro.baselines import NetworkExpansionEngine
        from repro.serving import ServiceError

        engine = NetworkExpansionEngine(network.copy(), providers["objects"])
        service = RoadService(engine)
        try:
            with pytest.raises(ServiceError, match="does not manage"):
                service.attach_objects(providers["hotels"], name="hotels")
            with pytest.raises(ServiceError, match="does not manage"):
                service.detach_objects("objects")
        finally:
            service.close()

    def test_detach_outside_pinned_set_keeps_snapshot(
        self, network, providers
    ):
        """A pinned set that never compiled the detached provider keeps
        its snapshot — no refreeze for an unchanged compile set."""
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            providers={"hotels": providers["hotels"]},
            directories=["objects"],
        )
        snapshot = engine.frozen
        assert snapshot is not None
        engine.detach_objects("hotels")
        assert engine.frozen is snapshot  # untouched, still serving

    def test_detach_guard_never_compiles_a_doomed_snapshot(
        self, network, providers
    ):
        """Regression: the serving-directory guard must not resolve
        through the lazily-freezing serving object — with an invalidated
        snapshot that would pay a full compile the detach immediately
        invalidates again."""
        engine = ROADEngine(
            network.copy(),
            providers["objects"],
            levels=2,
            mode="frozen",
            maintenance_mode="refreeze",
            providers={"hotels": providers["hotels"]},
        )
        service = RoadService(
            engine,
            config=ServiceConfig(mode="frozen", maintenance="refreeze"),
        )
        try:
            u, v, d = next(iter(engine.network.edges()))
            service.update_edge_distance(u, v, d * 2.0)
            assert engine.frozen is None  # invalidated, not yet rebuilt
            freezes = engine.stats()["maintenance"]["freezes"]
            service.detach_objects("hotels")
            assert engine.stats()["maintenance"]["freezes"] == freezes
        finally:
            service.close()

    def test_bare_road_pinned_detach_keeps_shards_consistent(
        self, network, providers
    ):
        """Regression: with a bare ROAD executor (no live directories
        knob) and a pinned config set, detach must rebuild the shards
        from the directories still attached — not crash on the stale
        config tuple and strand shards on the detached provider."""
        from repro.core.framework import ROAD

        road = ROAD.build(network.copy(), levels=2)
        for name, objects in providers.items():
            road.attach_objects(objects, name=name)
        service = RoadService(
            road,
            config=ServiceConfig(
                replicas=1, directories=("objects", "hotels")
            ),
        )
        try:
            assert service.replicas[0].directory_names == [
                "objects", "hotels",
            ]
            service.detach_objects("hotels")
            assert service.replicas[0].directory_names == ["objects"]
            u, v, d = next(iter(road.network.edges()))
            service.update_edge_distance(u, v, d * 1.5)
            assert service.run(KNNQuery(0, 2)) == road.execute(KNNQuery(0, 2))
        finally:
            service.close()

    def test_bare_road_pinned_attach_rebuilds_shards(
        self, network, providers
    ):
        """Regression: on a bare executor the effective shard set is
        pinned ∩ attached — attaching a pinned-but-absent provider grows
        it, so the shards must be re-frozen, not skipped."""
        import asyncio

        road = ROAD.build(network.copy(), levels=2)
        road.attach_objects(providers["objects"])
        service = RoadService(
            road,
            config=ServiceConfig(
                replicas=1, directories=("objects", "hotels")
            ),
        )
        try:
            assert service.replicas[0].directory_names == ["objects"]
            service.attach_objects(providers["hotels"], name="hotels")
            assert service.replicas[0].directory_names == [
                "objects", "hotels",
            ]

            async def go():
                return await service.submit(
                    KNNQuery(0, 2), directory="hotels"
                )

            assert asyncio.run(go()) == service.run(
                KNNQuery(0, 2), directory="hotels"
            )
        finally:
            service.close()

    def test_named_providers_only_replicas_need_explicit_directory(
        self, network, providers
    ):
        """A replica service over a road with only named providers fails
        with a clear ServiceError (set ServiceConfig.directory), not a
        deep UnknownDirectoryError about the never-attached default."""
        from repro.serving import ServiceError

        road = ROAD.build(network.copy(), levels=2)
        road.attach_objects(providers["hotels"], name="hotels")
        with pytest.raises(ServiceError, match="do not compile"):
            RoadService(road, config=ServiceConfig(replicas=1))
        # Naming the serving directory makes the same shape work.
        service = RoadService(
            road, config=ServiceConfig(replicas=1, directory="hotels")
        )
        try:
            assert service.run(KNNQuery(0, 2))
        finally:
            service.close()

    def test_replica_default_must_be_compiled(self, network, providers):
        """Regression: a pinned shard set that excludes the resolved
        serving directory fails with a clear ServiceError, not a deep
        UnknownDirectoryError naming an unconfigured directory."""
        from repro.core.framework import ROAD
        from repro.serving import ServiceError

        road = ROAD.build(network.copy(), levels=2)
        for name, objects in providers.items():
            road.attach_objects(objects, name=name)
        with pytest.raises(ServiceError, match="do not compile"):
            RoadService(
                road,
                config=ServiceConfig(
                    replicas=1, directories=("hotels", "fuel")
                ),
            )
