"""Unit coverage for the cross-request result cache.

Four contract surfaces of :mod:`repro.serving.result_cache`:

* **key canonicalization** — permuted-but-equal predicates and RouteKNN
  seed sets share a key; ODMatrix row order and AggregateKNN node
  multisets are answer-significant, so permutations must miss;
* **LRU budget** — least-recently-*used* eviction order, with hits
  refreshing recency;
* **invalidation precision** — a report dirtying node A must evict
  every entry whose footprint contains A and no entry whose footprint
  excludes it, scoped to the report's directory; structural reports
  drop the scope wholesale; the populate generation refuses stale
  stores;
* **counter accuracy** — the attribute counters, ``stats()`` and the
  ``road_cache_*_total`` families on ``/metrics`` all tell the same
  story.

The churn-soak equivalence suite
(``tests/property/test_result_cache_equivalence.py``) proves the cache
never changes an answer; this file pins the mechanism.
"""

import asyncio

import pytest

from repro.core.frozen_backends import shared_memory_available
from repro.core.maintenance import MaintenanceReport
from repro.graph.generators import grid_network
from repro.objects.model import SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import (
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    RouteKNNQuery,
    ServiceAreaQuery,
)
from repro.serving import RoadService, ServiceConfig
from repro.serving.result_cache import (
    MISS,
    ResultCache,
    canonical_key,
    query_nodes,
)

DIR = "objects"


def _store(cache, key, answer, nodes, rnets=()):
    """Populate with a fresh (non-stale) generation for the key's scope."""
    return cache.store(key, answer, nodes, rnets, cache.generation(key[0]))


class TestCanonicalKey:
    def test_permuted_predicates_share_a_key(self):
        # Predicate() stores `required` verbatim — only Predicate.of
        # sorts — so these are *unequal* dataclasses with equal meaning.
        forward = Predicate((("type", "cafe"), ("zone", "a")))
        backward = Predicate((("zone", "a"), ("type", "cafe")))
        assert forward != backward
        assert canonical_key(DIR, KNNQuery(3, 2, forward)) == canonical_key(
            DIR, KNNQuery(3, 2, backward)
        )

    def test_distinct_predicates_do_not_collide(self):
        assert canonical_key(
            DIR, KNNQuery(3, 2, Predicate.of(type="cafe"))
        ) != canonical_key(DIR, KNNQuery(3, 2, Predicate.of(type="fuel")))

    def test_route_knn_seed_set_collapses_order_and_duplicates(self):
        # The multi-source kernel seeds a frontier set: order and
        # duplicates cannot show in the answer.
        base = canonical_key(DIR, RouteKNNQuery((0, 1, 9), 2))
        assert canonical_key(DIR, RouteKNNQuery((9, 0, 1), 2)) == base
        assert canonical_key(DIR, RouteKNNQuery((1, 9, 0, 1, 9), 2)) == base
        assert canonical_key(DIR, RouteKNNQuery((0, 1), 2)) != base

    def test_od_matrix_row_order_is_answer_significant(self):
        base = canonical_key(DIR, ODMatrixQuery((0, 1), (2, 3)))
        assert canonical_key(DIR, ODMatrixQuery((1, 0), (2, 3))) != base
        assert canonical_key(DIR, ODMatrixQuery((0, 1), (3, 2))) != base

    def test_aggregate_nodes_are_multiset_significant(self):
        # sum/max/min aggregate over the per-node distance multiset:
        # a duplicated node doubles its weight under "sum".
        base = canonical_key(DIR, AggregateKNNQuery((0, 1), 2))
        assert canonical_key(DIR, AggregateKNNQuery((0, 0, 1), 2)) != base
        assert canonical_key(DIR, AggregateKNNQuery((1, 0), 2)) != base
        assert canonical_key(
            DIR, AggregateKNNQuery((0, 1), 2, agg="max")
        ) != base

    def test_query_kind_and_directory_scope_the_key(self):
        assert canonical_key(DIR, KNNQuery(0, 2)) != canonical_key(
            DIR, RouteKNNQuery((0,), 2)
        )
        assert canonical_key(DIR, KNNQuery(0, 2)) != canonical_key(
            "hotels", KNNQuery(0, 2)
        )

    def test_service_area_breaks_already_normalised(self):
        # ServiceAreaQuery.__post_init__ sorts breaks, so permuted break
        # lists are the *same* query and the same key.
        assert canonical_key(
            DIR, ServiceAreaQuery(0, (400.0, 150.0))
        ) == canonical_key(DIR, ServiceAreaQuery(0, (150.0, 400.0)))

    def test_unknown_query_class_is_uncacheable(self):
        assert canonical_key(DIR, object()) is None
        cache = ResultCache(budget=4)
        assert cache.lookup(None) is MISS
        # An uncacheable query is not a cache miss — it never reached it.
        assert cache.misses == 0

    @pytest.mark.parametrize(
        ("query", "nodes"),
        [
            (KNNQuery(7, 2), (7,)),
            (RangeQuery(7, 5.0), (7,)),
            (ServiceAreaQuery(7, (5.0,)), (7,)),
            (AggregateKNNQuery((3, 7), 1), (3, 7)),
            (ODMatrixQuery((1, 2), (3,)), (1, 2, 3)),
            (RouteKNNQuery((4, 5), 1), (4, 5)),
        ],
    )
    def test_query_nodes_covers_every_kind(self, query, nodes):
        assert query_nodes(query) == nodes

    def test_query_nodes_unknown_class_is_empty(self):
        assert query_nodes(object()) == ()


class TestLRUBudget:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            ResultCache(budget=0)

    def test_least_recently_used_is_evicted_first(self):
        cache = ResultCache(budget=2)
        a = canonical_key(DIR, KNNQuery(0, 1))
        b = canonical_key(DIR, KNNQuery(1, 1))
        c = canonical_key(DIR, KNNQuery(2, 1))
        assert _store(cache, a, ["a"], {0})
        assert _store(cache, b, ["b"], {1})
        assert cache.lookup(a) == ["a"]  # refresh a: b is now the LRU
        assert _store(cache, c, ["c"], {2})
        assert cache.lookup(b) is MISS
        assert cache.lookup(a) == ["a"]
        assert cache.lookup(c) == ["c"]
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_restore_replaces_in_place(self):
        cache = ResultCache(budget=2)
        key = canonical_key(DIR, KNNQuery(0, 1))
        assert _store(cache, key, ["old"], {0, 1})
        assert _store(cache, key, ["new"], {0})
        assert len(cache) == 1
        assert cache.lookup(key) == ["new"]
        # The replaced entry's old footprint is unlinked: dirtying the
        # node only the *old* footprint touched evicts nothing.
        assert cache.invalidate_report(
            MaintenanceReport(kind="edge_distance", dirty_nodes={1})
        ) == 0
        assert cache.lookup(key) == ["new"]

    def test_eviction_unlinks_the_inverted_indexes(self):
        cache = ResultCache(budget=1)
        a = canonical_key(DIR, KNNQuery(0, 1))
        b = canonical_key(DIR, KNNQuery(1, 1))
        assert _store(cache, a, ["a"], {0}, {10})
        assert _store(cache, b, ["b"], {1}, {11})  # evicts a
        # Dirtying a's footprint must not count a phantom invalidation.
        assert cache.invalidate_report(
            MaintenanceReport(kind="edge_distance", dirty_nodes={0},
                              dirty_rnets={10})
        ) == 0
        assert cache.lookup(b) == ["b"]


class TestPopulateGuards:
    def test_empty_node_footprint_is_refused(self):
        # An entry no report could ever reach must not be cached: it
        # would serve stale answers forever.
        cache = ResultCache(budget=4)
        key = canonical_key(DIR, KNNQuery(0, 1))
        assert not _store(cache, key, ["x"], set())
        assert len(cache) == 0

    def test_stale_generation_is_refused(self):
        cache = ResultCache(budget=4)
        key = canonical_key(DIR, KNNQuery(0, 1))
        generation = cache.generation(DIR)  # captured before the "miss"
        cache.invalidate_directory(DIR)  # a patch lands mid-execution
        assert not cache.store(key, ["stale"], {0}, (), generation)
        assert cache.lookup(key) is MISS

    def test_network_report_refuses_every_directory(self):
        cache = ResultCache(budget=4)
        generation = cache.generation("hotels")
        cache.invalidate_report(
            MaintenanceReport(kind="edge_distance", dirty_nodes={99})
        )
        key = canonical_key("hotels", KNNQuery(0, 1))
        assert not cache.store(key, ["stale"], {0}, (), generation)

    def test_directory_churn_does_not_refuse_other_directories(self):
        cache = ResultCache(budget=4)
        generation = cache.generation("hotels")
        cache.invalidate_directory(DIR)  # churn elsewhere
        key = canonical_key("hotels", KNNQuery(0, 1))
        assert cache.store(key, ["fresh"], {0}, (), generation)
        assert cache.lookup(key) == ["fresh"]


class TestInvalidationPrecision:
    def test_only_footprint_intersecting_entries_die(self):
        cache = ResultCache(budget=8)
        near = canonical_key(DIR, KNNQuery(1, 1))
        far = canonical_key(DIR, KNNQuery(6, 1))
        assert _store(cache, near, ["near"], {1, 2})
        assert _store(cache, far, ["far"], {6, 7})
        evicted = cache.invalidate_report(
            MaintenanceReport(kind="edge_distance", dirty_nodes={2, 3})
        )
        assert evicted == 1
        assert cache.lookup(near) is MISS
        assert cache.lookup(far) == ["far"]  # footprint excludes node 2
        assert cache.invalidations == 1

    def test_dirty_rnets_reach_bypassed_expansions(self):
        # ChoosePath may answer without settling any node of an Rnet it
        # bypassed — the examined-Rnet set is the only hook a report has.
        cache = ResultCache(budget=8)
        key = canonical_key(DIR, KNNQuery(0, 1))
        assert _store(cache, key, ["x"], {0}, rnets={3})
        evicted = cache.invalidate_report(
            MaintenanceReport(
                kind="insert_object", directory=DIR, dirty_rnets={3}
            )
        )
        assert (evicted, cache.lookup(key)) == (1, MISS)

    def test_object_reports_are_directory_scoped(self):
        cache = ResultCache(budget=8)
        objects_key = canonical_key(DIR, KNNQuery(5, 1))
        hotels_key = canonical_key("hotels", KNNQuery(5, 1))
        assert _store(cache, objects_key, ["o"], {5})
        assert _store(cache, hotels_key, ["h"], {5})
        cache.invalidate_report(
            MaintenanceReport(
                kind="insert_object", directory=DIR, dirty_nodes={5}
            )
        )
        assert cache.lookup(objects_key) is MISS
        assert cache.lookup(hotels_key) == ["h"]

    def test_network_reports_consult_every_directory(self):
        cache = ResultCache(budget=8)
        objects_key = canonical_key(DIR, KNNQuery(5, 1))
        hotels_key = canonical_key("hotels", KNNQuery(5, 1))
        assert _store(cache, objects_key, ["o"], {5})
        assert _store(cache, hotels_key, ["h"], {5})
        evicted = cache.invalidate_report(
            MaintenanceReport(kind="edge_distance", dirty_nodes={5})
        )
        assert evicted == 2
        assert cache.lookup(objects_key) is MISS
        assert cache.lookup(hotels_key) is MISS

    def test_structural_reports_drop_the_scope_wholesale(self):
        cache = ResultCache(budget=8)
        report = MaintenanceReport(kind="add_edge", dirty_nodes={99})
        assert report.structural
        keys = [canonical_key(DIR, KNNQuery(n, 1)) for n in range(3)]
        for n, key in enumerate(keys):
            assert _store(cache, key, [n], {n})  # none touch node 99
        assert cache.invalidate_report(report) == 3
        assert len(cache) == 0

    def test_invalidate_directory_and_clear_all(self):
        cache = ResultCache(budget=8)
        objects_key = canonical_key(DIR, KNNQuery(0, 1))
        hotels_key = canonical_key("hotels", KNNQuery(0, 1))
        assert _store(cache, objects_key, ["o"], {0})
        assert _store(cache, hotels_key, ["h"], {0})
        assert cache.invalidate_directory(DIR) == 1
        assert cache.lookup(hotels_key) == ["h"]
        assert cache.clear_all() == 1
        assert len(cache) == 0
        assert cache.invalidations == 2

    def test_stats_snapshot_shape(self):
        cache = ResultCache(budget=8)
        key = canonical_key(DIR, KNNQuery(0, 1))
        assert _store(cache, key, ["x"], {0})
        cache.lookup(key)
        cache.lookup(canonical_key(DIR, KNNQuery(9, 1)))
        assert cache.stats() == {
            "entries": 1, "budget": 8, "hits": 1, "misses": 1,
            "evictions": 0, "invalidations": 0,
        }


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------


def submit_all(service, queries, repeats=1):
    """`repeats` sequential passes of per-query submits (no coalescing
    between passes — the second pass exercises the cross-flush cache)."""

    async def go():
        passes = []
        for _ in range(repeats):
            passes.append(
                await asyncio.gather(*(service.submit(q) for q in queries))
            )
        return passes

    return asyncio.run(go())


@pytest.fixture
def network():
    return grid_network(8, 8, seed=3)


@pytest.fixture
def objects(network):
    return place_uniform(
        network, 20, seed=8, attr_choices={"type": ["cafe", "fuel"]}
    )


@pytest.fixture
def cached_service(network, objects):
    service = RoadService.build(
        network.copy(), objects,
        config=ServiceConfig(
            mode="frozen", levels=3, max_batch=64,
            result_cache=True, cache_budget=64,
        ),
    )
    yield service
    service.close()


QUERIES = [
    KNNQuery(0, 3, Predicate.of(type="cafe")),
    RangeQuery(9, 300.0),
    AggregateKNNQuery((0, 27), 2, agg="max"),
    ODMatrixQuery((0, 9), (27, 63)),
    ServiceAreaQuery(18, (150.0, 400.0)),
    RouteKNNQuery((0, 1, 9), 2, Predicate.of(type="fuel")),
]


class TestServiceConfigKnobs:
    def test_defaults_off(self):
        config = ServiceConfig()
        assert not config.result_cache
        assert config.cache_budget == 2048

    def test_cache_budget_validated(self):
        with pytest.raises(ValueError):
            ServiceConfig(result_cache=True, cache_budget=0)

    def test_from_env_reads_cache_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "on")
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "17")
        config = ServiceConfig.from_env()
        assert config.result_cache and config.cache_budget == 17
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert not ServiceConfig.from_env().result_cache
        monkeypatch.setenv("REPRO_RESULT_CACHE", "maybe")
        with pytest.raises(ValueError):
            ServiceConfig.from_env()

    def test_uncached_service_reports_no_cache_stats(self, network, objects):
        service = RoadService.build(
            network.copy(), objects, config=ServiceConfig(levels=3)
        )
        try:
            assert "result_cache" not in service.stats()
        finally:
            service.close()


class TestCachedService:
    def test_warm_pass_hits_and_stays_byte_identical(self, cached_service):
        cold, warm = submit_all(cached_service, QUERIES, repeats=2)
        assert cold == warm == cached_service.run_many(QUERIES)
        counters = cached_service.stats()["result_cache"]
        assert counters["entries"] == len(QUERIES)
        assert counters["misses"] == len(QUERIES)
        assert counters["hits"] == len(QUERIES)

    def test_cached_answers_are_independent_lists(self, cached_service):
        query = KNNQuery(4, 3)
        (first,), (second,) = submit_all(
            cached_service, [query], repeats=2
        )
        assert first is not second
        expected = list(second)
        first.reverse()
        first.pop()
        assert second == expected
        # The cache-resident answer is intact too: a third pass still
        # serves the original.
        ((third,),) = submit_all(cached_service, [query])
        assert third == expected

    def test_coalescing_and_cache_compose(self, cached_service):
        # One flush of 8 identical queries: coalescing folds them to a
        # single cache probe (one miss), and the next flush hits.
        query = KNNQuery(12, 2)

        async def burst():
            return await asyncio.gather(
                *(cached_service.submit(query) for _ in range(8))
            )

        answers = asyncio.run(burst())
        assert all(a == answers[0] for a in answers)
        counters = cached_service.stats()["result_cache"]
        assert (counters["misses"], counters["hits"]) == (1, 0)
        asyncio.run(burst())
        assert cached_service.stats()["result_cache"]["hits"] == 1

    def test_patch_invalidates_and_serves_fresh_answers(self, cached_service):
        submit_all(cached_service, QUERIES)
        u, v, distance = sorted(cached_service.executor.network.edges())[0]
        cached_service.update_edge_distance(u, v, distance * 2.5)
        counters = cached_service.stats()["result_cache"]
        assert counters["invalidations"] > 0
        (post,) = submit_all(cached_service, QUERIES)
        assert post == cached_service.run_many(QUERIES)

    def test_invalidation_matches_footprints_exactly(self, cached_service):
        """Service-level precision: recompute the victims a report should
        claim from the stored footprints and hold the cache to exactly
        that set — no sparing, no collateral."""
        submit_all(cached_service, QUERIES)
        cache = cached_service._result_cache
        before = {
            key: (entry.nodes, entry.rnets)
            for key, entry in cache._entries.items()
        }
        assert len(before) == len(QUERIES)
        u, v, distance = sorted(
            cached_service.executor.network.edges()
        )[0]
        report = cached_service.update_edge_distance(u, v, distance * 1.7)
        assert not report.structural
        expected_victims = {
            key
            for key, (nodes, rnets) in before.items()
            if nodes & report.dirty_nodes or rnets & report.dirty_rnets
        }
        assert set(before) - set(cache._entries) == expected_victims
        assert cache.invalidations == len(expected_victims)

    def test_structural_patch_nukes_the_cache(self, cached_service):
        submit_all(cached_service, QUERIES)
        network = cached_service.executor.network
        a, b = 0, 27
        assert not network.has_edge(a, b)
        report = cached_service.add_edge(a, b, 1.0)
        assert report.structural
        assert len(cached_service._result_cache) == 0
        (post,) = submit_all(cached_service, QUERIES)
        assert post == cached_service.run_many(QUERIES)

    def test_object_churn_spares_other_directories(
        self, network, objects, cached_service
    ):
        hotels = place_uniform(
            network, 6, seed=41, attr_choices={"type": ["cafe"]}
        )
        cached_service.attach_objects(hotels, name="hotels")
        query = KNNQuery(0, 2)

        async def one(directory):
            return await cached_service.submit(query, directory=directory)

        asyncio.run(one("objects"))
        asyncio.run(one("hotels"))
        cache = cached_service._result_cache
        assert len(cache) == 2
        u, v, _ = sorted(network.edges())[0]
        cached_service.insert_object(
            SpatialObject(hotels.next_id(), (u, v), 0.0, {"type": "cafe"}),
            directory="hotels",
        )
        # The objects-directory entry survives hotel churn.
        assert canonical_key("objects", query) in cache._entries
        assert asyncio.run(one("objects")) == cached_service.run(
            query, directory="objects"
        )
        assert asyncio.run(one("hotels")) == cached_service.run(
            query, directory="hotels"
        )

    def test_attach_invalidates_only_the_new_directory(
        self, network, cached_service
    ):
        submit_all(cached_service, QUERIES)
        entries = len(cached_service._result_cache)
        hotels = place_uniform(network, 6, seed=5)
        cached_service.attach_objects(hotels, name="hotels")
        assert len(cached_service._result_cache) == entries
        (post,) = submit_all(cached_service, QUERIES)
        assert post == cached_service.run_many(QUERIES)

    def test_counters_agree_with_metrics_render_and_stats(
        self, cached_service
    ):
        submit_all(cached_service, QUERIES, repeats=2)
        u, v, distance = sorted(cached_service.executor.network.edges())[0]
        cached_service.update_edge_distance(u, v, distance * 2.0)
        counters = cached_service.stats()["result_cache"]
        text = cached_service.metrics.render()
        for name in ("hits", "misses", "evictions", "invalidations"):
            line = f"road_cache_{name}_total {counters[name]}"
            assert line in text, (line, text)
            assert f"# TYPE road_cache_{name}_total counter" in text
        hits, misses = counters["hits"], counters["misses"]
        ratio = hits / (hits + misses)
        snapshot = cached_service.stats()["metrics"]
        assert snapshot["road_cache_hit_ratio"] == pytest.approx(ratio)
        assert snapshot["road_cache_entries"] == float(
            len(cached_service._result_cache)
        )


@pytest.mark.parametrize(
    "replica_mode",
    [
        "thread",
        pytest.param(
            "process",
            marks=pytest.mark.skipif(
                not shared_memory_available(),
                reason="host has no POSIX shared memory (/dev/shm)",
            ),
        ),
    ],
)
class TestCachedReplicaModes:
    def test_cache_sits_above_the_shards(self, network, objects, replica_mode):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(
                mode="frozen", levels=3, replicas=2,
                replica_mode=replica_mode, max_batch=64,
                result_cache=True, cache_budget=64,
            ),
        )
        try:
            cold, warm = submit_all(service, QUERIES, repeats=2)
            assert cold == warm == service.run_many(QUERIES)
            counters = service.stats()["result_cache"]
            assert counters["hits"] == len(QUERIES)
            u, v, distance = sorted(service.executor.network.edges())[0]
            service.update_edge_distance(u, v, distance * 2.5)
            (post,) = submit_all(service, QUERIES)
            assert post == service.run_many(QUERIES)
        finally:
            service.close()
