"""The network-analysis workloads: OD matrices, isochrones, in-route kNN.

Three layers of guarantees, matching the serving stack:

* **Oracle** — every workload agrees with brute-force Dijkstra ground
  truth (min-over-seeds for the multi-source sweeps);
* **Identity** — charged ROAD, FrozenRoad on every installed backend, a
  saved/mmap-loaded snapshot, and both ROADEngine modes return the same
  bytes for the same query;
* **Serving** — the async admission path (thread and process shards)
  answers exactly like the sync primary, and every degenerate shape
  (empty targets, unreachable cells, duplicate path nodes, unsorted
  breaks, unknown directories) has one defined behaviour everywhere.
"""

from __future__ import annotations

import math
import os
import random

import pytest

from repro.baselines.road_adapter import ROADEngine
from repro.core.framework import ROAD
from repro.core.frozen_backends import installed_backends, shared_memory_available
from repro.core.search import SearchStats
from repro.core.serialize import load_snapshot, save_snapshot
from repro.eval.metrics import snapshot_divergences
from repro.graph.generators import grid_network
from repro.graph.network import RoadNetwork
from repro.graph.shortest_path import dijkstra_distances
from repro.objects.model import ObjectSet, SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import (
    ODMatrixEntry,
    ODMatrixQuery,
    Predicate,
    RouteKNNQuery,
    ServiceAreaEntry,
    ServiceAreaQuery,
)
from repro.serving import RoadService, ServiceConfig
from repro.serving.dispatch import UnknownDirectoryError
from repro.serving.wire import decode_result, encode_result
from tests.oracle import brute_object_distances

NETWORK = grid_network(8, 8, seed=13)
OBJECTS = place_uniform(NETWORK, 20, seed=5, attr_choices={"type": ["a", "b"]})
PRED_A = Predicate.of(type="a")

QUERIES = [
    ODMatrixQuery((0, 9, 27), (20, 63, 20)),
    ODMatrixQuery((5,), (5,)),
    ServiceAreaQuery(0, (150.0, 400.0, 900.0)),
    ServiceAreaQuery(12, (250.0, 600.0), PRED_A),
    RouteKNNQuery((0, 1, 2, 10, 18), 4),
    RouteKNNQuery((7, 15, 23), 3, PRED_A),
]


@pytest.fixture(scope="module")
def road():
    road = ROAD.build(NETWORK.copy(), levels=3)
    road.attach_objects(OBJECTS)
    return road


@pytest.fixture(scope="module")
def frozen(road):
    return road.freeze()


def brute_multi_source(seeds, predicate=None, radius=None, k=None):
    """Min-over-seeds brute force: the ground truth for both sweeps."""
    best = {}
    for seed in set(seeds):
        for distance, object_id in brute_object_distances(
            NETWORK, OBJECTS, seed, predicate or Predicate()
        ):
            if object_id not in best or distance < best[object_id]:
                best[object_id] = distance
    out = sorted((d, o) for o, d in best.items())
    if radius is not None:
        out = [(d, o) for d, o in out if d <= radius]
    if k is not None:
        out = out[:k]
    return out


class TestOracle:
    def test_od_matrix_matches_dijkstra(self, road, frozen):
        sources, targets = [0, 9, 27], [20, 63, 20]
        for engine in (road, frozen):
            cells = engine.execute(ODMatrixQuery(tuple(sources), tuple(targets)))
            assert len(cells) == len(sources) * len(targets)
            for i, s in enumerate(sources):
                dist = dijkstra_distances(NETWORK.neighbours, s)
                for j, t in enumerate(targets):
                    cell = cells[i * len(targets) + j]
                    assert cell == ODMatrixEntry(s, t, dist.get(t, math.inf))

    def test_service_area_matches_brute_range(self, road, frozen):
        breaks = (150.0, 400.0, 900.0)
        expected = brute_multi_source([0], radius=breaks[-1])
        for engine in (road, frozen):
            got = engine.execute(ServiceAreaQuery(0, breaks))
            assert [(e.distance, e.object_id) for e in got] == pytest.approx(
                expected
            )
            for entry in got:
                # bucket = index of the first break covering the hit
                assert entry.bucket == min(
                    i for i, b in enumerate(breaks) if entry.distance <= b
                )

    def test_route_knn_matches_min_over_path(self, road, frozen):
        path, k = (0, 1, 2, 10, 18), 4
        expected = brute_multi_source(path, k=k)
        for engine in (road, frozen):
            got = engine.execute(RouteKNNQuery(path, k))
            assert [(e.distance, e.object_id) for e in got] == pytest.approx(
                expected
            )

    def test_predicate_filters_both_sweeps(self, road, frozen):
        expected = brute_multi_source([12], predicate=PRED_A, radius=600.0)
        for engine in (road, frozen):
            got = engine.execute(ServiceAreaQuery(12, (250.0, 600.0), PRED_A))
            assert [(e.distance, e.object_id) for e in got] == pytest.approx(
                expected
            )
        expected = brute_multi_source((7, 15, 23), predicate=PRED_A, k=3)
        for engine in (road, frozen):
            got = engine.execute(RouteKNNQuery((7, 15, 23), 3, PRED_A))
            assert [(e.distance, e.object_id) for e in got] == pytest.approx(
                expected
            )


class TestCrossEngineIdentity:
    def test_every_backend_matches_charged(self, road):
        base = road.execute_many(QUERIES)
        for backend in installed_backends():
            assert road.freeze(backend=backend).execute_many(QUERIES) == base

    def test_mmap_snapshot_matches_charged(self, road, frozen, tmp_path):
        path = os.fspath(tmp_path / "snapshot.bin")
        save_snapshot(frozen, path)
        loaded = load_snapshot(path)
        try:
            assert loaded.execute_many(QUERIES) == road.execute_many(QUERIES)
        finally:
            loaded.close()

    @pytest.mark.parametrize("mode", ["charged", "frozen"])
    def test_road_engine_modes_match(self, road, mode):
        engine = ROADEngine(NETWORK.copy(), OBJECTS, levels=3, mode=mode)
        assert engine.execute_many(QUERIES) == road.execute_many(QUERIES)

    def test_stats_are_identical_across_engines(self, road, frozen):
        for query in QUERIES:
            charged_stats, frozen_stats = SearchStats(), SearchStats()
            assert road.execute(query, stats=charged_stats) == frozen.execute(
                query, stats=frozen_stats
            )
            assert charged_stats == frozen_stats, query

    def test_patched_snapshot_stays_identical(self, road):
        divergences = snapshot_divergences(
            random.Random(7), road.freeze(), road.freeze(), probes=3
        )
        assert divergences == []


class TestServingPaths:
    @pytest.mark.parametrize(
        "replica_mode",
        [
            "thread",
            pytest.param(
                "process",
                marks=pytest.mark.skipif(
                    not shared_memory_available(),
                    reason="shared memory unavailable",
                ),
            ),
        ],
    )
    def test_async_shards_match_sync_primary(self, replica_mode):
        service = RoadService.build(
            NETWORK.copy(),
            OBJECTS,
            config=ServiceConfig(
                mode="frozen",
                levels=3,
                replicas=2,
                replica_mode=replica_mode,
                max_batch=8,
                max_delay_ms=0.5,
            ),
        )
        try:
            import asyncio

            async def drive():
                return await asyncio.gather(
                    *(service.submit(q) for q in QUERIES)
                )

            got = asyncio.run(drive())
            assert got == service.run_many(QUERIES)
        finally:
            service.close()

    def test_wire_round_trip_per_kind(self, road):
        for query in QUERIES:
            rows = road.execute(query)
            assert decode_result(encode_result(rows)) == rows


class TestDegenerateShapes:
    def test_empty_targets_yield_empty_matrix(self, road, frozen):
        query = ODMatrixQuery((0, 1), ())
        assert road.execute(query) == []
        assert frozen.execute(query) == []

    def test_source_equals_target_is_zero(self, road, frozen):
        query = ODMatrixQuery((5,), (5,))
        for engine in (road, frozen):
            assert engine.execute(query) == [ODMatrixEntry(5, 5, 0.0)]

    def test_unreachable_cell_is_inf_and_crosses_as_null(self):
        network = RoadNetwork()
        for i in range(8):
            network.add_node(i, float(i % 4), float(i // 4))
        for a, b in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]:
            network.add_edge(a, b, 1.0)
        objects = ObjectSet([SpatialObject(0, (0, 1), 0.5, {"type": "a"})])
        road = ROAD.build(network, levels=2)
        road.attach_objects(objects)
        query = ODMatrixQuery((0,), (7,))
        cell = road.execute(query)[0]
        assert math.isinf(cell.distance)
        assert road.freeze().execute(query) == [cell]
        encoded = encode_result([cell])
        assert encoded[0]["distance"] is None
        assert decode_result(encoded) == [cell]

    def test_duplicate_path_nodes_collapse(self, road, frozen):
        for engine in (road, frozen):
            assert engine.execute(RouteKNNQuery((5, 5, 5), 3)) == engine.execute(
                RouteKNNQuery((5,), 3)
            )

    def test_unsorted_breaks_normalise(self, road):
        sorted_q = ServiceAreaQuery(0, (150.0, 400.0))
        unsorted_q = ServiceAreaQuery(0, (400.0, 150.0))
        assert unsorted_q.breaks == (150.0, 400.0)
        assert road.execute(unsorted_q) == road.execute(sorted_q)

    def test_zero_break_keeps_coincident_hits_only(self, road, frozen):
        got = road.execute(ServiceAreaQuery(0, (0.0,)))
        assert frozen.execute(ServiceAreaQuery(0, (0.0,))) == got
        assert all(
            entry.distance == 0.0 and entry.bucket == 0 for entry in got
        )

    def test_method_level_validation_matches_dataclass(self, road, frozen):
        for engine in (road, frozen):
            with pytest.raises(ValueError, match="need at least one source"):
                engine.od_matrix([], [0])
            with pytest.raises(ValueError, match="need at least one break"):
                engine.service_area(0, [])
            with pytest.raises(ValueError, match="need at least one path"):
                engine.route_knn([], 2)
            with pytest.raises(ValueError, match="k must be >= 1"):
                engine.route_knn([0], 0)

    def test_unknown_directory_raises_on_every_surface(self, road, frozen):
        for query in QUERIES:
            for engine in (road, frozen):
                with pytest.raises(UnknownDirectoryError):
                    engine.execute(query, directory="nope")

    def test_bucket_entries_carry_their_shape(self, road):
        got = road.execute(ServiceAreaQuery(0, (400.0,)))
        assert all(isinstance(entry, ServiceAreaEntry) for entry in got)
        assert all(entry.bucket == 0 for entry in got)
