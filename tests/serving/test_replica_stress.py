"""Threaded stress regression: patch-broadcast vs in-flight replica batches.

The serving design under test: query batches execute on pool *worker*
threads holding their replica's lock (``_run_on_replica``), while
maintenance broadcasts run on the event-loop thread and take every
replica lock in turn (``apply_report``).  This suite hammers both sides
at once and asserts the lock discipline actually delivers what RA002
polices statically — no torn reads, no ``BufferError`` from a patch
splicing a buffer a query batch is reading, and byte-identical replicas
afterwards.

The companion assertion runs RA002 itself over the seeded
lock-violation fixture: the invariant the stress exercises dynamically
must be the one the lint engine can catch statically.
"""

import asyncio
import random
from pathlib import Path

import pytest

from repro.analysis import analyze_path
from repro.eval.metrics import snapshot_divergences
from repro.graph.generators import grid_network
from repro.objects.model import SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import Predicate
from repro.queries.workload import mixed_workload
from repro.serving import RoadService, ServiceConfig

ROUNDS = 6
LOCK_FIXTURE = (
    Path(__file__).parent.parent / "analysis" / "fixtures" / "ra002_unlocked_write"
)


@pytest.fixture
def service_parts():
    network = grid_network(9, 9, seed=3)
    objects = place_uniform(
        network, 24, seed=8, attr_choices={"type": ["cafe", "fuel"]}
    )
    workload = mixed_workload(
        network, 24, k=3, radius=300.0, seed=21,
        predicates=[Predicate.of(type="cafe")],
    )
    return network, objects, workload


def test_broadcast_under_concurrent_batches(service_parts):
    network, objects, workload = service_parts
    service = RoadService.build(
        network.copy(), objects,
        # Small batches force many round-robin dispatches per wave, so
        # both replicas have batches in flight when a broadcast lands.
        config=ServiceConfig(
            mode="frozen", levels=3, replicas=2, max_batch=4,
            max_delay_ms=0.5,
        ),
    )
    rnd = random.Random(97)
    edges = sorted((u, v) for u, v, _ in service.executor.network.edges())

    async def stress():
        waves = []
        for step in range(ROUNDS):
            in_flight = asyncio.gather(
                *(service.submit(q) for q in workload)
            )
            # Let the flush timer fire and batches reach the pool ...
            for _ in range(4):
                await asyncio.sleep(0.001)
            # ... then broadcast while they execute.  apply_report takes
            # each replica lock on *this* thread while the pool's worker
            # threads hold/queue on the same locks.
            u, v = edges[rnd.randrange(len(edges))]
            if step % 2 == 0:
                service.update_edge_distance(
                    u, v, service.executor.network.edge_distance(u, v) * 1.5
                )
            else:
                service.insert_object(
                    SpatialObject(
                        objects.next_id() + step, (u, v), 0.0,
                        {"type": "cafe"},
                    )
                )
            waves.append(await in_flight)
        return waves

    try:
        waves = asyncio.run(stress())
        assert len(waves) == ROUNDS
        # Quiesced: every replica is byte-identical to a fresh freeze of
        # the maintained road — the broadcasts lost nothing.
        fresh = service.executor.road.freeze()
        for replica in service.replicas:
            divergences = snapshot_divergences(
                random.Random(5), replica, fresh, probes=3
            )
            assert divergences == []
        # And the async sharded path agrees with the sync primary.
        async def final():
            return await asyncio.gather(*(service.submit(q) for q in workload))

        assert asyncio.run(final()) == service.run_many(workload)
        stats = service.stats()
        assert stats["replicas"] == 2
    finally:
        service.close()


def test_ra002_catches_the_seeded_lock_violation():
    """The discipline stressed above is statically enforced: RA002 fires
    on every seeded violation shape (unlocked element write, rebind
    outside setup, admission state under a replica lock)."""
    findings = analyze_path(LOCK_FIXTURE, rule_ids=["RA002"])
    assert [f.rule for f in findings] == ["RA002"] * 3
    messages = " | ".join(f.message for f in findings)
    assert "_replicas" in messages
    assert "_pending_count" in messages
