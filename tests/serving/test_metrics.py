"""The metrics registry: lock-cheap children, honest scrapes.

The contract surface of :mod:`repro.serving.metrics`: get-or-create
children (the service and the HTTP app hold handles to the same counter
without coordination), Prometheus text exposition that a scraper will
actually parse (HELP/TYPE lines, cumulative ``le`` buckets, escaped
label values), and a ``snapshot()`` mirror for ``RoadService.stats()``.
Gauges are sampled callbacks: one that raises is dropped from that
scrape and counted, never turned into a 500.
"""

import math

import pytest

from repro.serving.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS_MS,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_get_or_create_returns_the_same_child(self, registry):
        first = registry.counter("road_things_total", "Things.")
        second = registry.counter("road_things_total")
        assert first is second
        first.inc()
        second.inc(2.0)
        assert first.value == 3.0

    def test_label_sets_are_distinct_children(self, registry):
        ok = registry.counter("road_http_total", labels={"code": "200"})
        bad = registry.counter("road_http_total", labels={"code": "500"})
        assert ok is not bad
        ok.inc(5)
        assert ok.value == 5.0
        assert bad.value == 0.0
        # Label order does not mint a new child.
        assert registry.counter(
            "road_http_total", labels={"code": "200"}
        ) is ok

    def test_counters_only_go_up(self, registry):
        counter = registry.counter("road_up_total")
        with pytest.raises(MetricError, match="only go up"):
            counter.inc(-1.0)

    def test_kind_conflict_rejected(self, registry):
        registry.counter("road_mixed")
        with pytest.raises(MetricError, match="already registered"):
            registry.histogram("road_mixed")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricError, match="invalid metric name"):
            registry.counter("road-dashes")
        with pytest.raises(MetricError, match="invalid label name"):
            registry.counter("road_ok_total", labels={"bad-label": "x"})


class TestHistogram:
    def test_observe_accumulates_count_and_sum(self, registry):
        histogram = registry.histogram("road_wait_ms")
        for value in (0.2, 0.2, 7.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(7.4)

    def test_percentile_interpolates_within_the_bucket(self, registry):
        histogram = registry.histogram(
            "road_size", buckets=(1.0, 10.0, 100.0)
        )
        for _ in range(99):
            histogram.observe(5.0)  # all in the (1, 10] bucket
        histogram.observe(50.0)  # one in the (10, 100] bucket
        assert 1.0 <= histogram.percentile(0.50) <= 10.0
        assert 10.0 <= histogram.percentile(0.999) <= 100.0
        with pytest.raises(MetricError, match="fraction"):
            histogram.percentile(0.0)

    def test_empty_histogram_percentile_is_zero(self, registry):
        assert registry.histogram("road_idle_ms").percentile(0.99) == 0.0

    def test_bounds_must_increase(self, registry):
        with pytest.raises(MetricError, match="distinct and increasing"):
            registry.histogram("road_bad_ms", buckets=(5.0, 1.0))

    def test_snapshot_shape(self, registry):
        histogram = registry.histogram(
            "road_batch", buckets=BATCH_SIZE_BUCKETS
        )
        histogram.observe(4.0)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "sum", "p50", "p95", "p99"}
        assert snap["count"] == 1

    def test_render_buckets_are_cumulative_with_inf(self, registry):
        histogram = registry.histogram(
            "road_lat_ms", "Latency.", buckets=(1.0, 10.0)
        )
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(5000.0)  # beyond the last bound: +Inf bucket
        text = registry.render()
        assert "# HELP road_lat_ms Latency." in text
        assert "# TYPE road_lat_ms histogram" in text
        assert 'road_lat_ms_bucket{le="1"} 1' in text
        assert 'road_lat_ms_bucket{le="10"} 2' in text
        assert 'road_lat_ms_bucket{le="+Inf"} 3' in text
        assert "road_lat_ms_count 3" in text


class TestGauge:
    def test_scalar_gauge_samples_at_scrape_time(self, registry):
        state = {"value": 1.0}
        registry.gauge("road_depth", "Depth.", lambda: state["value"])
        assert "road_depth 1" in registry.render()
        state["value"] = 2.5
        assert "road_depth 2.5" in registry.render()
        assert registry.snapshot()["road_depth"] == 2.5

    def test_labelled_gauge_expands_the_mapping(self, registry):
        registry.gauge(
            "road_bytes",
            "Bytes by directory.",
            lambda: {"objects": 10.0, "hotels": 3.0},
            label="directory",
        )
        text = registry.render()
        assert 'road_bytes{directory="hotels"} 3' in text
        assert 'road_bytes{directory="objects"} 10' in text
        assert registry.snapshot()["road_bytes"] == {
            "objects": 10.0,
            "hotels": 3.0,
        }

    def test_raising_gauge_is_skipped_and_counted(self, registry):
        def explode():
            raise RuntimeError("engine half closed")

        registry.gauge("road_broken", "Broken.", explode)
        registry.counter("road_fine_total").inc()
        text = registry.render()
        assert "road_broken" not in text.replace(
            "road_metrics_gauge_errors_total", ""
        )
        assert "road_fine_total 1" in text
        assert "road_metrics_gauge_errors_total 1" in text
        # snapshot() drops it silently (same must-not-raise contract).
        assert "road_broken" not in registry.snapshot()

    def test_mapping_without_label_declared_is_an_error(self, registry):
        registry.gauge("road_oops", "Oops.", lambda: {"a": 1.0})
        # The bad sample is contained as a scrape error, not propagated.
        assert "road_metrics_gauge_errors_total 1" in registry.render()


class TestExposition:
    def test_label_values_are_escaped(self, registry):
        registry.counter(
            "road_esc_total", labels={"path": 'a"b\\c\nd'}
        ).inc()
        assert 'path="a\\"b\\\\c\\nd"' in registry.render()

    def test_value_formatting(self, registry):
        registry.gauge("road_nan", "NaN.", lambda: math.nan)
        registry.gauge("road_inf", "Inf.", lambda: math.inf)
        registry.gauge("road_int", "Int.", lambda: 42.0)
        text = registry.render()
        assert "road_nan NaN" in text
        assert "road_inf +Inf" in text
        assert "road_int 42" in text

    def test_families_render_sorted_and_end_with_newline(self, registry):
        registry.counter("road_z_total").inc()
        registry.counter("road_a_total").inc()
        text = registry.render()
        assert text.index("road_a_total") < text.index("road_z_total")
        assert text.endswith("\n")

    def test_snapshot_collapses_single_unlabelled_children(self, registry):
        registry.counter("road_plain_total").inc(7)
        registry.counter("road_by_code_total", labels={"code": "200"}).inc()
        snap = registry.snapshot()
        assert snap["road_plain_total"] == 7.0
        assert snap["road_by_code_total"] == {'{code="200"}': 1.0}

    def test_default_latency_buckets_span_the_serving_range(self):
        assert LATENCY_BUCKETS_MS[0] <= 0.05
        assert LATENCY_BUCKETS_MS[-1] >= 1000.0
        assert list(LATENCY_BUCKETS_MS) == sorted(LATENCY_BUCKETS_MS)
