"""RoadService: config, sync/async/sharded byte-identity, maintenance.

The acceptance contract: the service serves **byte-identical** results
across the sync path, the async admission-batched path, and the
sharded-replica path — including after maintenance patch-broadcasts —
verified both by direct result comparison and with the
:func:`repro.eval.metrics.snapshot_divergences` probes between replicas
and a fresh freeze.
"""

import asyncio
import random

import pytest

from repro.core.framework import ROAD
from repro.eval.metrics import snapshot_divergences
from repro.graph.generators import grid_network
from repro.objects.model import SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import KNNQuery, Predicate, RangeQuery
from repro.queries.workload import mixed_workload
from repro.serving import (
    RoadService,
    ServiceConfig,
    ServiceError,
    UnknownDirectoryError,
    UnsupportedQueryError,
)


@pytest.fixture
def network():
    return grid_network(9, 9, seed=3)


@pytest.fixture
def objects(network):
    return place_uniform(
        network, 24, seed=8, attr_choices={"type": ["cafe", "fuel"]}
    )


@pytest.fixture
def workload(network):
    return mixed_workload(
        network, 40, k=3, radius=300.0, seed=21,
        predicates=[Predicate.of(type="cafe"), Predicate.of(type="fuel")],
    )


def gather_submits(service, queries, **kwargs):
    async def go():
        return await asyncio.gather(
            *(service.submit(q, **kwargs) for q in queries)
        )

    return asyncio.run(go())


class TestServiceConfig:
    def test_defaults(self):
        config = ServiceConfig()
        assert (config.engine, config.mode) == ("ROAD", "charged")
        assert config.maintenance == "patch"
        assert config.replicas == 0 and config.coalesce

    @pytest.mark.parametrize(
        "field,value",
        [
            ("engine", "Oracle"),
            ("mode", "warm"),
            ("maintenance", "rebuild"),
            ("backend", "sparse"),
            ("max_batch", 0),
            ("max_delay_ms", -1.0),
            ("replicas", -2),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ServiceConfig(**{field: value})

    def test_from_env_reads_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "frozen")
        monkeypatch.setenv("REPRO_MAINTENANCE", "refreeze")
        monkeypatch.setenv("REPRO_REPLICAS", "3")
        monkeypatch.setenv("REPRO_DIRECTORIES", "objects, hotels")
        config = ServiceConfig.from_env()
        assert config.mode == "frozen"
        assert config.maintenance == "refreeze"
        assert config.replicas == 3
        assert config.directories == ("objects", "hotels")

    def test_directories_normalised_and_validated(self):
        config = ServiceConfig(directories=["hotels", "objects"])
        assert config.directories == ("hotels", "objects")
        with pytest.raises(ValueError):
            ServiceConfig(directories=())
        with pytest.raises(ValueError):
            ServiceConfig(directories=("", "hotels"))
        with pytest.raises(ValueError, match="per-character"):
            ServiceConfig(directories="hotels")

    def test_sharded_build_never_compiles_a_primary_snapshot(
        self, network, objects
    ):
        """Regression: resolving the shard default must not lazily
        freeze the primary — only the replica freezes may run at build
        (and membership changes must not re-freeze the primary either)."""
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="frozen", levels=3, replicas=2),
        )
        try:
            engine = service.executor
            # mode="frozen" freezes the primary once at engine build; the
            # replica setup must not add lazy freezes on top.
            assert engine.stats()["maintenance"]["freezes"] == 1
            hotels = place_uniform(network, 6, seed=41)
            service.attach_objects(hotels, name="hotels")
            service.run(KNNQuery(0, 1))  # one lazy refreeze (new directory)
            assert engine.stats()["maintenance"]["freezes"] == 2
        finally:
            service.close()

    def test_explicit_kwargs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "frozen")
        assert ServiceConfig.from_env(mode="charged").mode == "charged"

    def test_env_validation_still_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "lukewarm")
        with pytest.raises(ValueError):
            ServiceConfig.from_env()


class TestBuild:
    def test_build_selects_engine_family(self, network, objects):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(engine="NetExp"),
        )
        assert type(service.executor).__name__ == "NetworkExpansionEngine"

    def test_build_road_frozen(self, network, objects):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="frozen", levels=3),
        )
        assert service.executor.mode == "frozen"
        assert service.executor.frozen is not None

    def test_wrap_existing_road(self, network, objects):
        road = ROAD.build(network.copy(), levels=3)
        road.attach_objects(objects)
        service = RoadService(road)
        assert service.run(KNNQuery(0, 2)) == road.knn(0, 2)

    def test_non_executor_rejected(self):
        with pytest.raises(TypeError):
            RoadService(object())

    def test_replicas_need_a_road(self, network, objects):
        with pytest.raises(ServiceError):
            RoadService.build(
                network.copy(), objects,
                config=ServiceConfig(engine="NetExp", replicas=2),
            )


class TestByteIdentity:
    """Sync == async-batched == sharded-replica, on every installed backend."""

    def test_async_matches_sync(self, network, objects, workload):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="frozen", levels=3, max_batch=256),
        )
        assert gather_submits(service, workload) == service.run_many(workload)
        service.close()

    def test_sharded_matches_sync(self, network, objects, workload):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(
                mode="frozen", levels=3, replicas=2, max_batch=8
            ),
        )
        try:
            assert len(service.replicas) == 2
            assert gather_submits(service, workload) == service.run_many(workload)
        finally:
            service.close()

    def test_coalescing_preserves_answers(self, network, objects):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="frozen", levels=3, max_batch=512),
        )
        query = KNNQuery(4, 3)
        answers = gather_submits(service, [query] * 12)
        expected = service.run(query)
        assert all(answer == expected for answer in answers)
        counters = service.stats()["service"]
        assert counters["coalesced"] == 11
        assert counters["executed"] == 1
        service.close()

    def test_coalesced_answers_are_independent_lists(self, network, objects):
        """Regression: a caller mutating its answer must not corrupt its
        coalesced in-flight twins' (the sync path hands out distinct
        lists, so aliasing would break sync/async parity)."""
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="frozen", levels=3, max_batch=512),
        )
        query = KNNQuery(4, 3)
        first, second = gather_submits(service, [query] * 2)
        assert first is not second
        expected = list(second)
        first.reverse()
        first.pop()
        assert second == expected
        service.close()

    def test_charged_async_matches_sync(self, network, objects, workload):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="charged", levels=3, max_batch=256),
        )
        assert gather_submits(service, workload) == service.run_many(workload)
        service.close()


class TestShardedMaintenance:
    def test_patch_broadcast_keeps_replicas_identical(
        self, network, objects, workload
    ):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="frozen", levels=3, replicas=2),
        )
        try:
            engine = service.executor
            u, v, distance = next(engine.network.edges())
            service.update_edge_distance(u, v, distance * 2.5)
            service.insert_object(
                SpatialObject(objects.next_id(), (u, v), 0.0, {"type": "cafe"})
            )
            # Replicas were patch-broadcast, not re-frozen: zero
            # divergences against a fresh freeze of the updated road.
            fresh = engine.road.freeze()
            for replica in service.replicas:
                divergences = snapshot_divergences(
                    random.Random(17), replica, fresh, probes=3
                )
                assert divergences == []
            assert gather_submits(service, workload) == service.run_many(workload)
        finally:
            service.close()

    def test_patch_broadcast_covers_every_directory(self, network, objects):
        """Sharded replicas compile every attached provider; one report
        reconciles all directories on all shards."""
        hotels = place_uniform(
            network, 10, seed=31, attr_choices={"type": ["cafe"]}
        )
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="frozen", levels=3, replicas=2),
            providers={"hotels": hotels},
        )
        try:
            engine = service.executor
            assert all(
                replica.directory_names == ["objects", "hotels"]
                for replica in service.replicas
            )
            u, v, distance = next(engine.network.edges())
            service.update_edge_distance(u, v, distance * 1.8)
            service.insert_object(
                SpatialObject(hotels.next_id(), (u, v), 0.0, {"type": "cafe"}),
                directory="hotels",
            )
            for name in ("objects", "hotels"):
                fresh = engine.road.freeze(directory=name)
                for replica in service.replicas:
                    divergences = snapshot_divergences(
                        random.Random(5), replica, fresh, probes=3,
                        directory=name,
                    )
                    assert divergences == []
            queries = [KNNQuery(0, 3), KNNQuery(9, 2)]
            assert gather_submits(
                service, queries, directory="hotels"
            ) == service.run_many(queries, directory="hotels")
        finally:
            service.close()


class TestAdmissionControl:
    def test_unsupported_query_rejected_before_admission(
        self, network, objects
    ):
        service = RoadService.build(
            network.copy(), objects, config=ServiceConfig(levels=3)
        )

        async def go():
            with pytest.raises(UnsupportedQueryError):
                await service.submit("not a query")
            # The poisoned submit must not leave residue behind.
            return await service.submit(KNNQuery(0, 2))

        assert asyncio.run(go()) == service.run(KNNQuery(0, 2))
        service.close()

    def test_unknown_directory_rejected_before_admission(
        self, network, objects
    ):
        service = RoadService.build(
            network.copy(), objects, config=ServiceConfig(levels=3)
        )

        async def go():
            with pytest.raises(UnknownDirectoryError):
                await service.submit(KNNQuery(0, 2), directory="nope")

        asyncio.run(go())
        service.close()

    def test_survives_an_abandoned_event_loop(self, network, objects):
        """Regression: a loop dying with a flush timer pending must not
        wedge the service — the next loop's submits adopt fresh state."""
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(
                mode="frozen", levels=3, max_batch=64, max_delay_ms=50.0
            ),
        )
        query = KNNQuery(0, 2)

        async def abandon():
            task = asyncio.ensure_future(service.submit(query))
            await asyncio.sleep(0)  # let it enqueue + schedule the timer
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(abandon())

        async def fresh_loop():
            return await asyncio.wait_for(service.submit(query), timeout=5.0)

        assert asyncio.run(fresh_loop()) == service.run(query)
        service.close()

    def test_wrapping_named_directory_snapshot(self, network, objects):
        """A service over a snapshot of a named provider serves it by
        default (config.directory=None cascades to the executor)."""
        road = ROAD.build(network.copy(), levels=3)
        road.attach_objects(objects, name="hotels")
        snapshot = road.freeze(directory="hotels")
        service = RoadService(snapshot)
        query = KNNQuery(0, 2)
        assert service.run(query) == snapshot.knn(0, 2)

        async def go():
            return await service.submit(query)

        assert asyncio.run(go()) == snapshot.knn(0, 2)
        service.close()

    def test_max_batch_flushes_without_waiting(self, network, objects):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(
                mode="frozen", levels=3, max_batch=4,
                max_delay_ms=10_000.0,  # only the occupancy flush can fire
            ),
        )
        queries = [KNNQuery(n, 2) for n in (0, 10, 20, 30)]

        async def go():
            return await asyncio.wait_for(
                asyncio.gather(*(service.submit(q) for q in queries)),
                timeout=5.0,
            )

        assert asyncio.run(go()) == service.run_many(queries)
        service.close()

    def test_per_predicate_buckets(self, network, objects):
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(mode="frozen", levels=3, max_batch=64),
        )
        queries = [
            KNNQuery(0, 2, Predicate.of(type="cafe")),
            KNNQuery(0, 2, Predicate.of(type="fuel")),
            RangeQuery(5, 200.0, Predicate.of(type="cafe")),
        ]
        assert gather_submits(service, queries) == service.run_many(queries)
        # Two distinct predicates -> two buckets -> two batches.
        assert service.stats()["service"]["batches"] == 2
        service.close()


class TestEvalHarnessIsolation:
    def test_repro_replicas_does_not_break_engine_builds(
        self, monkeypatch, network, objects
    ):
        """Regression: REPRO_REPLICAS must not leak into the figure
        harness — baseline engines cannot shard, and bare ROAD engines
        must not freeze snapshots the harness never serves from."""
        from repro.eval.runner import build_engine, build_service

        monkeypatch.setenv("REPRO_REPLICAS", "2")
        engine = build_engine(
            "NetExp", network, objects, buffer_pages=8
        )
        assert engine.knn(0, 1)
        service = build_service(
            "ROAD", network, objects, road_levels=3, buffer_pages=8
        )
        assert service.replicas == ()
        service.close()


class TestDeprecationShims:
    def test_runner_mode_helpers_warn_and_delegate(self, monkeypatch):
        from repro.eval import runner

        monkeypatch.setenv("REPRO_ENGINE", "frozen")
        monkeypatch.setenv("REPRO_MAINTENANCE", "refreeze")
        with pytest.warns(DeprecationWarning, match="road-repro deprecated"):
            assert runner.road_mode() == "frozen"
        with pytest.warns(DeprecationWarning, match="road-repro deprecated"):
            assert runner.road_maintenance() == "refreeze"
        with pytest.warns(DeprecationWarning, match="road-repro deprecated"):
            assert runner.road_backend() is None
