"""Process-shard serving: seqlock broadcasts vs in-flight worker batches.

The process analog of ``test_replica_stress``: query batches execute in
worker *processes* attached to one shared-memory snapshot, while
maintenance broadcasts patch that snapshot in place on the primary under
the seqlock generation counter (odd = patch in flight, workers retry
instead of serving torn reads).  The suite hammers both sides at once
through the full RoadService front-end, then checks the pool's own
contract surface directly (worker errors, snapshot replacement,
lifecycle).
"""

import asyncio
import random

import pytest

from repro.core.frozen_backends import shared_memory_available
from repro.eval.metrics import snapshot_divergences
from repro.graph.generators import grid_network
from repro.objects.model import SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import KNNQuery, Predicate
from repro.queries.workload import mixed_workload
from repro.serving import (
    ProcessPoolError,
    ProcessReplicaPool,
    RoadService,
    ServiceConfig,
    UnknownDirectoryError,
    WorkerError,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="host has no POSIX shared memory (/dev/shm)",
)

ROUNDS = 4


@pytest.fixture
def service_parts():
    network = grid_network(9, 9, seed=3)
    objects = place_uniform(
        network, 24, seed=8, attr_choices={"type": ["cafe", "fuel"]}
    )
    workload = mixed_workload(
        network, 24, k=3, radius=300.0, seed=21,
        predicates=[Predicate.of(type="cafe")],
    )
    return network, objects, workload


@pytest.fixture
def service(service_parts):
    network, objects, _ = service_parts
    service = RoadService.build(
        network.copy(), objects,
        config=ServiceConfig(
            mode="frozen", levels=3, replicas=2, replica_mode="process",
            max_batch=4, max_delay_ms=0.5,
        ),
    )
    yield service
    service.close()


def test_broadcasts_under_concurrent_process_batches(service_parts, service):
    network, objects, workload = service_parts
    rnd = random.Random(97)
    edges = sorted((u, v) for u, v, _ in service.executor.network.edges())

    async def stress():
        waves = []
        for step in range(ROUNDS):
            in_flight = asyncio.gather(
                *(service.submit(q) for q in workload)
            )
            # Let the flush timer fire and batches reach the workers ...
            for _ in range(4):
                await asyncio.sleep(0.001)
            # ... then patch the shared snapshot while they execute:
            # apply() holds the generation counter odd for the patch
            # window, so a worker mid-batch re-runs instead of tearing.
            u, v = edges[rnd.randrange(len(edges))]
            if step % 2 == 0:
                service.update_edge_distance(
                    u, v, service.executor.network.edge_distance(u, v) * 1.5
                )
            else:
                service.insert_object(
                    SpatialObject(
                        objects.next_id() + step, (u, v), 0.0,
                        {"type": "cafe"},
                    )
                )
            waves.append(await in_flight)
        return waves

    waves = asyncio.run(stress())
    assert len(waves) == ROUNDS
    # Quiesced: the shared snapshot is byte-identical to a fresh freeze
    # of the maintained road — the broadcasts lost nothing.
    fresh = service.executor.road.freeze()
    for replica in service.replicas:
        assert snapshot_divergences(
            random.Random(5), replica, fresh, probes=3
        ) == []

    # And the async process-sharded path agrees with the sync primary.
    async def final():
        return await asyncio.gather(*(service.submit(q) for q in workload))

    assert asyncio.run(final()) == service.run_many(workload)

    stats = service.stats()
    assert stats["replicas"] == 2
    assert stats["replica_mode"] == "process"
    pool = stats["process_pool"]
    assert pool["workers"] == 2
    assert pool["syncs"] >= ROUNDS
    assert pool["queries"] > 0


def test_attach_objects_replaces_the_shared_snapshot(service_parts, service):
    network, _, workload = service_parts
    banks = place_uniform(network, 6, seed=77, attr_choices={"type": ["bank"]})
    service.attach_objects(banks, name="banks")

    async def wave():
        return await asyncio.gather(
            *(service.submit(q, directory="banks") for q in workload)
        )

    assert asyncio.run(wave()) == service.run_many(workload, directory="banks")
    assert service.stats()["process_pool"]["reloads"] >= 1


def test_worker_errors_surface_with_type_and_message(service):
    async def ask():
        return await service.submit(
            KNNQuery(node=0, k=2), directory="nowhere"
        )

    with pytest.raises(UnknownDirectoryError):
        asyncio.run(ask())


def _pool_parts():
    network = grid_network(7, 7, seed=11)
    objects = place_uniform(
        network, 16, seed=4, attr_choices={"type": ["cafe", "fuel"]}
    )
    road = RoadService.build(
        network, objects, config=ServiceConfig(mode="frozen", levels=3)
    ).executor.road
    workload = mixed_workload(network, 12, k=3, radius=250.0, seed=9)
    return road, workload


def test_pool_rejects_non_shm_snapshots():
    road, _ = _pool_parts()
    snapshot = road.freeze()
    try:
        with pytest.raises(ProcessPoolError, match="shm"):
            ProcessReplicaPool(snapshot, workers=1)
    finally:
        snapshot.close()


def test_pool_serves_raises_and_closes():
    road, workload = _pool_parts()
    pool = ProcessReplicaPool(road.freeze(backend="shm"), workers=2)
    try:
        reference = road.freeze()
        answers = pool.submit(workload, None).result(timeout=60)
        assert answers == reference.execute_many(workload)
        reference.close()
        # A worker-side failure arrives as a typed, picklable error.
        with pytest.raises(WorkerError, match="UnknownDirectoryError"):
            pool.submit(workload[:1], "nowhere").result(timeout=60)
        stats = pool.stats()
        assert stats["batches"] == 2
        assert stats["workers"] == 2
    finally:
        pool.close()
        pool.close()  # idempotent
    assert pool.stats()["closed"] is True
    # A closed pool refuses new work instead of hanging.
    with pytest.raises(ProcessPoolError, match="closed"):
        pool.submit(workload, None)
