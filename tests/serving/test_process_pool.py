"""Process-shard serving: seqlock broadcasts vs in-flight worker batches.

The process analog of ``test_replica_stress``: query batches execute in
worker *processes* attached to one shared-memory snapshot, while
maintenance broadcasts patch that snapshot in place on the primary under
the seqlock generation counter (odd = patch in flight, workers retry
instead of serving torn reads).  The suite hammers both sides at once
through the full RoadService front-end, then checks the pool's own
contract surface directly (worker errors, snapshot replacement,
lifecycle).
"""

import asyncio
import glob
import os
import random
import signal
import time

import pytest

from repro.core.frozen_backends import shared_memory_available
from repro.eval.metrics import snapshot_divergences
from repro.graph.generators import grid_network
from repro.objects.model import SpatialObject
from repro.objects.placement import place_uniform
from repro.queries.types import KNNQuery, Predicate
from repro.queries.workload import mixed_workload
from repro.serving import (
    ProcessPoolError,
    ProcessReplicaPool,
    RoadService,
    ServiceConfig,
    UnknownDirectoryError,
    WorkerError,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="host has no POSIX shared memory (/dev/shm)",
)

ROUNDS = 4


@pytest.fixture
def service_parts():
    network = grid_network(9, 9, seed=3)
    objects = place_uniform(
        network, 24, seed=8, attr_choices={"type": ["cafe", "fuel"]}
    )
    workload = mixed_workload(
        network, 24, k=3, radius=300.0, seed=21,
        predicates=[Predicate.of(type="cafe")],
    )
    return network, objects, workload


@pytest.fixture
def service(service_parts):
    network, objects, _ = service_parts
    service = RoadService.build(
        network.copy(), objects,
        config=ServiceConfig(
            mode="frozen", levels=3, replicas=2, replica_mode="process",
            max_batch=4, max_delay_ms=0.5,
        ),
    )
    yield service
    service.close()


def test_broadcasts_under_concurrent_process_batches(service_parts, service):
    network, objects, workload = service_parts
    rnd = random.Random(97)
    edges = sorted((u, v) for u, v, _ in service.executor.network.edges())

    async def stress():
        waves = []
        for step in range(ROUNDS):
            in_flight = asyncio.gather(
                *(service.submit(q) for q in workload)
            )
            # Let the flush timer fire and batches reach the workers ...
            for _ in range(4):
                await asyncio.sleep(0.001)
            # ... then patch the shared snapshot while they execute:
            # apply() holds the generation counter odd for the patch
            # window, so a worker mid-batch re-runs instead of tearing.
            u, v = edges[rnd.randrange(len(edges))]
            if step % 2 == 0:
                service.update_edge_distance(
                    u, v, service.executor.network.edge_distance(u, v) * 1.5
                )
            else:
                service.insert_object(
                    SpatialObject(
                        objects.next_id() + step, (u, v), 0.0,
                        {"type": "cafe"},
                    )
                )
            waves.append(await in_flight)
        return waves

    waves = asyncio.run(stress())
    assert len(waves) == ROUNDS
    # Quiesced: the shared snapshot is byte-identical to a fresh freeze
    # of the maintained road — the broadcasts lost nothing.
    fresh = service.executor.road.freeze()
    for replica in service.replicas:
        assert snapshot_divergences(
            random.Random(5), replica, fresh, probes=3
        ) == []

    # And the async process-sharded path agrees with the sync primary.
    async def final():
        return await asyncio.gather(*(service.submit(q) for q in workload))

    assert asyncio.run(final()) == service.run_many(workload)

    stats = service.stats()
    assert stats["replicas"] == 2
    assert stats["replica_mode"] == "process"
    pool = stats["replica_pool"]
    assert pool["workers"] == 2
    assert pool["syncs"] >= ROUNDS
    assert pool["queries"] > 0


def test_attach_objects_replaces_the_shared_snapshot(service_parts, service):
    network, _, workload = service_parts
    banks = place_uniform(network, 6, seed=77, attr_choices={"type": ["bank"]})
    service.attach_objects(banks, name="banks")

    async def wave():
        return await asyncio.gather(
            *(service.submit(q, directory="banks") for q in workload)
        )

    assert asyncio.run(wave()) == service.run_many(workload, directory="banks")
    assert service.stats()["replica_pool"]["reloads"] >= 1


def test_worker_errors_surface_with_type_and_message(service):
    async def ask():
        return await service.submit(
            KNNQuery(node=0, k=2), directory="nowhere"
        )

    with pytest.raises(UnknownDirectoryError):
        asyncio.run(ask())


def _pool_parts():
    network = grid_network(7, 7, seed=11)
    objects = place_uniform(
        network, 16, seed=4, attr_choices={"type": ["cafe", "fuel"]}
    )
    road = RoadService.build(
        network, objects, config=ServiceConfig(mode="frozen", levels=3)
    ).executor.road
    workload = mixed_workload(network, 12, k=3, radius=250.0, seed=9)
    return road, workload


def test_pool_rejects_non_shm_snapshots():
    road, _ = _pool_parts()
    snapshot = road.freeze()
    try:
        with pytest.raises(ProcessPoolError, match="shm"):
            ProcessReplicaPool(snapshot, workers=1)
    finally:
        snapshot.close()


def test_pool_serves_raises_and_closes():
    road, workload = _pool_parts()
    pool = ProcessReplicaPool(road.freeze(backend="shm"), workers=2)
    try:
        reference = road.freeze()
        answers = pool.submit(workload, None).result(timeout=60)
        assert answers == reference.execute_many(workload)
        reference.close()
        # A worker-side failure arrives as a typed, picklable error.
        with pytest.raises(WorkerError, match="UnknownDirectoryError"):
            pool.submit(workload[:1], "nowhere").result(timeout=60)
        stats = pool.stats()
        assert stats["batches"] == 2
        assert stats["workers"] == 2
    finally:
        pool.close()
        pool.close()  # idempotent
    assert pool.stats()["closed"] is True
    # A closed pool refuses new work instead of hanging.
    with pytest.raises(ProcessPoolError, match="closed"):
        pool.submit(workload, None)


def _await(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError("condition not reached within the timeout")


def test_worker_death_fails_futures_and_reroutes():
    """A killed worker neither hangs its futures nor keeps taking work.

    The watchdog waits on the process sentinels: a SIGKILL (stand-in for
    segfault/OOM) fails any batch routed at the corpse with a typed
    error, drops the worker from the round-robin, and the survivor keeps
    serving.  Only when every worker is gone does submit() refuse.

    Killed workers must also not leak /dev/shm entries: mask caches are
    process-local bytearrays even on the shm backend precisely so a
    worker that dies without running close() owns no named segments.
    """
    # Segments only: the queue semaphores (sem.mp-*) rightly live as long
    # as the pool object itself and are not a leak.
    shm_before = set(glob.glob("/dev/shm/psm_*")) | set(
        glob.glob("/dev/shm/repro_*")
    )
    road, workload = _pool_parts()
    pool = ProcessReplicaPool(road.freeze(backend="shm"), workers=2)
    try:
        reference = road.freeze()
        expected = reference.execute_many(workload)
        reference.close()
        assert pool.submit(workload, None).result(timeout=60) == expected

        os.kill(pool._processes[0].pid, signal.SIGKILL)
        # Batches routed at the corpse before the watchdog notices fail
        # instead of pending forever; once it has, everything reroutes.
        served = 0
        for _ in range(6):
            future = pool.submit(workload, None)
            try:
                assert future.result(timeout=60) == expected
                served += 1
            except ProcessPoolError as exc:
                assert "died" in str(exc)
            time.sleep(0.1)
        assert served > 0
        _await(lambda: pool.stats()["worker_deaths"] == 1)
        assert pool.submit(workload, None).result(timeout=60) == expected

        os.kill(pool._processes[1].pid, signal.SIGKILL)
        _await(lambda: pool.stats()["worker_deaths"] == 2)
        with pytest.raises(ProcessPoolError, match="died"):
            pool.submit(workload, None)
    finally:
        pool.close()
    leaked = (
        set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/repro_*"))
    ) - shm_before
    assert not leaked, f"worker deaths leaked shm entries: {sorted(leaked)}"


def test_failed_patch_degrades_pool_until_snapshot_replaced(monkeypatch):
    """A patch that dies mid-apply must not resume over torn arrays.

    The window stays open (generation odd, workers paused), the pool
    refuses submit()/apply() as degraded, and replace_snapshot() with a
    fresh freeze is the recovery path that closes the window over
    known-good state.
    """
    road, workload = _pool_parts()
    pool = ProcessReplicaPool(road.freeze(backend="shm"), workers=2)
    try:
        reference = road.freeze()
        expected = reference.execute_many(workload)
        reference.close()
        assert pool.submit(workload, None).result(timeout=60) == expected

        def explode(report, source=None):
            raise RuntimeError("simulated mid-patch failure")

        monkeypatch.setattr(pool.frozen, "apply", explode)
        with pytest.raises(RuntimeError, match="mid-patch"):
            pool.apply(object(), None)

        stats = pool.stats()
        assert stats["degraded"] is True
        assert stats["generation"] % 2 == 1  # window held open
        with pytest.raises(ProcessPoolError, match="degraded"):
            pool.submit(workload, None)
        with pytest.raises(ProcessPoolError, match="degraded"):
            pool.apply(object(), None)

        pool.replace_snapshot(road.freeze(backend="shm"))
        stats = pool.stats()
        assert stats["degraded"] is False
        assert stats["generation"] % 2 == 0
        assert pool.submit(workload, None).result(timeout=60) == expected
    finally:
        pool.close()


def test_close_unblocks_workers_parked_in_an_open_patch_window(monkeypatch):
    """close() on a degraded pool stops workers without terminate().

    A worker spinning in the seqlock catch-up (the patch window never
    closes after a failed apply) honours the control vector's stop word,
    aborts the batch, and exits cleanly on the stop task.
    """
    road, workload = _pool_parts()
    pool = ProcessReplicaPool(road.freeze(backend="shm"), workers=2)

    def explode(report, source=None):
        raise RuntimeError("simulated mid-patch failure")

    monkeypatch.setattr(pool.frozen, "apply", explode)
    with pytest.raises(RuntimeError, match="mid-patch"):
        pool.apply(object(), None)
    # Hand a worker a batch directly (submit() refuses while degraded):
    # it parks in the catch-up loop because the window never closes.
    pool._tasks[0].put(("batch", 10_000, list(workload), None))
    time.sleep(0.3)
    pool.close()
    assert all(process.exitcode == 0 for process in pool._processes)
