"""The HTTP serving edge: wire round-trips, typed statuses, health.

Exercises :class:`repro.serving.http.RoadServiceApp` in process (ASGI
calls, no sockets) against a real :class:`RoadService`:

* every query class with a wire codec round-trips through JSON and
  answers byte-identical to the sync primary (the registry-parity
  parametrisation mirrors ``tests/serving/test_dispatch.py``),
* errors map to the contract statuses (malformed 400, unknown directory
  404, wrong method 405, unknown route 404),
* ``POST /maintenance`` rides the patch-broadcast path and answers with
  the report kind,
* ``/metrics`` scrapes the service registry, ``/healthz`` grades the
  replica pool (ok / degraded / unhealthy) per the PR 7 containment
  contract,
* the built-in HTTP/1.1 parser serves pipelined keep-alive requests and
  rejects what it does not speak (chunked bodies).
"""

import asyncio
import json

import pytest

from repro.core.frozen_backends import shared_memory_available
from repro.graph.generators import grid_network
from repro.objects.placement import place_uniform
from repro.queries.types import (
    AggregateKNNQuery,
    KNNQuery,
    ODMatrixQuery,
    Predicate,
    RangeQuery,
    RouteKNNQuery,
    ServiceAreaQuery,
)
from repro.serving import RoadService, ServiceConfig
from repro.serving.http import RoadServiceApp, _handle_connection
from repro.serving.wire import (
    WireError,
    decode_query,
    decode_result,
    encode_query,
    wire_kinds,
    wire_types,
)

#: One representative (predicate-bearing where supported) query per
#: registered wire codec — the coverage guard below keeps this dict in
#: lockstep with the registry.
SAMPLES = {
    "KNNQuery": KNNQuery(0, 3, Predicate.of(type="a")),
    "RangeQuery": RangeQuery(0, 250.0),
    "AggregateKNNQuery": AggregateKNNQuery((0, 20), 2, agg="max"),
    "ODMatrixQuery": ODMatrixQuery((0, 9), (20, 63)),
    "ServiceAreaQuery": ServiceAreaQuery(0, (150.0, 400.0), Predicate.of(type="a")),
    "RouteKNNQuery": RouteKNNQuery((0, 1, 9), 2, Predicate.of(type="b")),
}


def call(app, method, path, payload=None, raw=None):
    """One in-process ASGI request: (status, decoded JSON | bytes)."""
    if raw is None:
        raw = b"" if payload is None else json.dumps(payload).encode()
    messages = [{"type": "http.request", "body": raw, "more_body": False}]
    out = {"status": 0, "type": "", "body": b""}

    async def receive():
        if messages:
            return messages.pop(0)
        return {"type": "http.disconnect"}

    async def send(message):
        if message["type"] == "http.response.start":
            out["status"] = message["status"]
            out["type"] = dict(message["headers"])[b"content-type"].decode()
        else:
            out["body"] += message.get("body", b"")

    async def go():
        await app({"type": "http", "method": method, "path": path},
                  receive, send)

    asyncio.run(go())
    if out["type"].startswith("application/json"):
        return out["status"], json.loads(out["body"])
    return out["status"], out["body"]


@pytest.fixture(scope="module")
def setting():
    network = grid_network(8, 8, seed=13)
    objects = place_uniform(
        network, 16, seed=5, attr_choices={"type": ["a", "b"]}
    )
    service = RoadService.build(
        network.copy(), objects,
        config=ServiceConfig(
            mode="frozen", levels=3, replicas=2,
            max_batch=8, max_delay_ms=0.5,
        ),
    )
    yield service, RoadServiceApp(service)
    service.close()


class TestWireCodecs:
    def test_every_registered_type_has_a_sample(self):
        assert {t.__name__ for t in wire_types()} == set(SAMPLES)
        assert len(wire_kinds()) == len(wire_types())

    @pytest.mark.parametrize(
        "query_type", wire_types(), ids=lambda t: t.__name__
    )
    def test_json_round_trip(self, query_type):
        query = SAMPLES[query_type.__name__]
        payload = json.loads(json.dumps(encode_query(query)))
        assert decode_query(payload) == query

    def test_unconstrained_predicate_is_omitted(self):
        assert "predicate" not in encode_query(RangeQuery(0, 10.0))

    @pytest.mark.parametrize(
        "payload",
        [
            "not a mapping",
            {"type": "warp", "node": 0},
            {"type": "knn", "node": 0},  # k missing
            {"type": "knn", "node": 0, "k": True},  # bool is not an int
            {"type": "knn", "node": 0, "k": 0},  # engine-side bound
            {"type": "range", "node": 0, "radius": "far"},
            {"type": "aggregate_knn", "nodes": [], "k": 1},
            {"type": "aggregate_knn", "nodes": [0], "k": 1, "agg": "mode"},
            {"type": "od_matrix", "sources": [], "targets": [0]},
            {"type": "od_matrix", "sources": "0", "targets": [0]},
            {"type": "od_matrix", "sources": [0, True], "targets": [0]},
            {"type": "service_area", "node": 0, "breaks": []},
            {"type": "service_area", "node": 0, "breaks": [100.0, "far"]},
            {"type": "service_area", "node": 0, "breaks": [-1.0]},
            {"type": "route_knn", "path": [], "k": 1},
            {"type": "route_knn", "path": [0, 1], "k": 0},
        ],
    )
    def test_malformed_payloads_raise_wire_errors(self, payload):
        with pytest.raises((WireError, ValueError)):
            decode_query(payload)


class TestQueryRoute:
    @pytest.mark.parametrize(
        "query_type", wire_types(), ids=lambda t: t.__name__
    )
    def test_single_query_matches_the_sync_primary(self, setting, query_type):
        service, app = setting
        query = SAMPLES[query_type.__name__]
        status, body = call(
            app, "POST", "/query", {"query": encode_query(query)}
        )
        assert status == 200
        assert decode_result(body["result"]) == service.run_many([query])[0]
        assert body["count"] == len(body["result"])

    def test_batch_matches_run_many(self, setting):
        service, app = setting
        queries = [SAMPLES[t.__name__] for t in wire_types()]
        status, body = call(
            app, "POST", "/query",
            {"queries": [encode_query(q) for q in queries]},
        )
        assert status == 200
        assert [
            decode_result(item) for item in body["results"]
        ] == service.run_many(queries)

    def test_unknown_directory_is_404(self, setting):
        _, app = setting
        status, body = call(
            app, "POST", "/query",
            {"query": encode_query(KNNQuery(0, 1)), "directory": "nope"},
        )
        assert status == 404
        assert "nope" in body["error"]

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # neither query nor queries
            {"query": {"type": "knn", "node": 0, "k": 1}, "queries": []},
            {"queries": "not a list"},
            {"query": {"type": "knn", "node": 0, "k": None}},
            {"query": {"type": "knn", "node": 0, "k": 1}, "directory": 7},
        ],
    )
    def test_bad_requests_are_400(self, setting, payload):
        _, app = setting
        status, body = call(app, "POST", "/query", payload)
        assert status == 400
        assert "error" in body

    def test_invalid_json_is_400(self, setting):
        _, app = setting
        status, body = call(app, "POST", "/query", raw=b"{nope")
        assert status == 400
        assert "JSON" in body["error"]

    def test_unknown_route_404_and_wrong_method_405(self, setting):
        _, app = setting
        assert call(app, "GET", "/nope")[0] == 404
        assert call(app, "GET", "/query")[0] == 405
        assert call(app, "POST", "/metrics")[0] == 405


class TestMaintenanceRoute:
    def test_edge_patch_reports_kind_and_broadcasts(self, setting):
        service, app = setting
        u, v, dist = sorted(service.executor.network.edges())[0]
        status, body = call(
            app, "POST", "/maintenance",
            {"op": "update_edge_distance", "u": u, "v": v,
             "distance": dist * 1.25},
        )
        assert status == 200
        assert body == {
            "op": "update_edge_distance", "ok": True,
            "kind": "edge_distance", "structural": False,
        }
        # The patch reached the shards: async answers == maintained primary.
        queries = [SAMPLES[t.__name__] for t in wire_types()]
        status, got = call(
            app, "POST", "/query",
            {"queries": [encode_query(q) for q in queries]},
        )
        assert status == 200
        assert [
            decode_result(item) for item in got["results"]
        ] == service.run_many(queries)

    def test_insert_then_delete_object(self, setting):
        service, app = setting
        u, v, _ = sorted(service.executor.network.edges())[0]
        object_id = 9_000
        status, body = call(
            app, "POST", "/maintenance",
            {"op": "insert_object",
             "object": {"object_id": object_id, "edge": [u, v],
                        "delta": 0.0, "attrs": {"type": "a"}}},
        )
        assert (status, body["ok"]) == (200, True)
        status, _ = call(
            app, "POST", "/maintenance",
            {"op": "delete_object", "object_id": object_id},
        )
        assert status == 200

    def test_unknown_object_id_is_400(self, setting):
        _, app = setting
        status, body = call(
            app, "POST", "/maintenance",
            {"op": "delete_object", "object_id": 123_456_789},
        )
        assert status == 400
        assert "not present" in body["error"]

    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "reticulate"},
            {"op": "update_edge_distance", "u": 0},  # v missing
            {"op": "update_edge_distance", "u": 0, "v": 1,
             "distance": "near"},
            {"op": "insert_object", "object": {"object_id": 1,
             "edge": [0], "delta": 0.0}},
            {"op": "insert_object", "object": {"object_id": 1,
             "edge": [0, 1], "delta": 0.0, "attrs": {"type": 3}}},
        ],
    )
    def test_bad_maintenance_is_400(self, setting, payload):
        _, app = setting
        status, body = call(app, "POST", "/maintenance", payload)
        assert status == 400
        assert "error" in body


class TestMetricsRoute:
    def test_scrape_carries_service_and_http_families(self, setting):
        service, app = setting
        call(app, "POST", "/query",
             {"query": encode_query(KNNQuery(0, 2))})
        status, body = call(app, "GET", "/metrics")
        assert status == 200
        text = body.decode()
        assert "# TYPE road_service_submitted_total counter" in text
        assert "# TYPE road_query_latency_ms histogram" in text
        assert 'road_http_requests_total{path="/query"}' in text
        assert 'road_http_responses_total{code="200"}' in text
        assert 'road_replica_pool{field="workers"} 2' in text
        # And the same numbers surface through stats()["metrics"].
        snapshot = service.stats()["metrics"]
        assert snapshot["road_service_submitted_total"] >= 1
        assert snapshot["road_query_latency_ms"]["count"] >= 1


class TestHealthz:
    def test_thread_shards_report_ok(self, setting):
        _, app = setting
        status, body = call(app, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert (body["workers"], body["alive"]) == (2, 2)

    def test_unsharded_service_is_ok_with_zero_workers(self):
        network = grid_network(4, 4, seed=1)
        objects = place_uniform(network, 4, seed=2)
        service = RoadService.build(
            network, objects, config=ServiceConfig(mode="frozen", levels=2)
        )
        try:
            status, body = call(
                RoadServiceApp(service), "GET", "/healthz"
            )
            assert (status, body["status"]) == (200, "ok")
            assert body["workers"] == 0
        finally:
            service.close()

    @pytest.mark.parametrize(
        ("pool", "status", "verdict"),
        [
            ({"workers": 2, "alive": 1, "degraded": False,
              "closed": False}, 200, "degraded"),
            ({"workers": 2, "alive": 2, "degraded": True,
              "closed": False}, 503, "unhealthy"),
            ({"workers": 2, "alive": 0, "degraded": False,
              "closed": False}, 503, "unhealthy"),
            ({"workers": 2, "alive": 2, "degraded": False,
              "closed": True}, 503, "unhealthy"),
        ],
    )
    def test_pool_grades(self, setting, monkeypatch, pool, status, verdict):
        service, app = setting
        monkeypatch.setattr(
            service, "replica_pool_stats", lambda: dict(pool)
        )
        got_status, body = call(app, "GET", "/healthz")
        assert (got_status, body["status"]) == (status, verdict)

    @pytest.mark.skipif(
        not shared_memory_available(),
        reason="host has no POSIX shared memory (/dev/shm)",
    )
    def test_torn_patch_degrades_process_pool_healthz(self, monkeypatch):
        """A failed mid-patch apply flips /healthz to 503 for real."""
        network = grid_network(6, 6, seed=3)
        objects = place_uniform(
            network, 8, seed=4, attr_choices={"type": ["a"]}
        )
        service = RoadService.build(
            network, objects,
            config=ServiceConfig(
                mode="frozen", levels=2, replicas=2, replica_mode="process"
            ),
        )
        app = RoadServiceApp(service)
        try:
            assert call(app, "GET", "/healthz")[0] == 200
            pool = service._process_pool

            def explode(report, source=None):
                raise RuntimeError("simulated mid-patch failure")

            monkeypatch.setattr(pool.frozen, "apply", explode)
            status, _ = call(
                app, "POST", "/maintenance",
                {"op": "update_edge_distance", "u": 0, "v": 1,
                 "distance": 1.0},
            )
            assert status == 500  # the patch itself failed loudly
            status, body = call(app, "GET", "/healthz")
            assert (status, body["status"]) == (503, "unhealthy")
            assert body["degraded"] is True
        finally:
            service.close()


class TestCachedServiceLeg:
    """The HTTP edge over a cache-enabled service: report-driven
    invalidation is visible end to end — a previously cached ``POST
    /query`` answer changes the moment ``POST /maintenance`` dirties its
    footprint, and the ``road_cache_*`` families ride ``GET /metrics``."""

    @pytest.fixture
    def cached(self):
        network = grid_network(6, 6, seed=7)
        objects = place_uniform(
            network, 10, seed=11, attr_choices={"type": ["a", "b"]}
        )
        service = RoadService.build(
            network.copy(), objects,
            config=ServiceConfig(
                mode="frozen", levels=2, max_batch=8, max_delay_ms=0.5,
                result_cache=True, cache_budget=32,
            ),
        )
        yield service, RoadServiceApp(service)
        service.close()

    def test_maintenance_refreshes_a_cached_answer(self, cached):
        service, app = cached
        query = KNNQuery(0, 2)
        payload = {"query": encode_query(query)}
        status, before = call(app, "POST", "/query", payload)
        assert status == 200
        # Second request is served out of the cache, byte-identical.
        status, again = call(app, "POST", "/query", payload)
        assert (status, again) == (200, before)
        assert service.stats()["result_cache"]["hits"] >= 1
        # Insert an object at the queried node: the cached answer's
        # footprint contains node 0, so the report must evict it.
        u, v, _ = sorted(service.executor.network.edges())[0]
        assert u == 0
        status, body = call(
            app, "POST", "/maintenance",
            {"op": "insert_object",
             "object": {"object_id": 9_100, "edge": [u, v],
                        "delta": 0.0, "attrs": {"type": "a"}}},
        )
        assert (status, body["ok"]) == (200, True)
        assert service.stats()["result_cache"]["invalidations"] >= 1
        # /healthz stays ok across the invalidation.
        status, health = call(app, "GET", "/healthz")
        assert (status, health["status"]) == (200, "ok")
        # The same request now answers post-patch: the new object sits
        # at network distance 0 from the query node.
        status, after = call(app, "POST", "/query", payload)
        assert status == 200
        assert after != before
        assert decode_result(after["result"]) == service.run_many([query])[0]
        assert decode_result(after["result"])[0].object_id == 9_100
        call(app, "POST", "/maintenance",
             {"op": "delete_object", "object_id": 9_100})

    def test_metrics_scrape_carries_cache_families(self, cached):
        service, app = cached
        payload = {"query": encode_query(KNNQuery(5, 2))}
        call(app, "POST", "/query", payload)
        call(app, "POST", "/query", payload)
        status, body = call(app, "GET", "/metrics")
        assert status == 200
        text = body.decode()
        for name in ("hits", "misses", "evictions", "invalidations"):
            assert f"# TYPE road_cache_{name}_total counter" in text
        counters = service.stats()["result_cache"]
        assert f"road_cache_hits_total {counters['hits']}" in text
        assert "road_cache_hit_ratio" in text
        assert f"road_cache_entries {counters['entries']}" in text


class _Writer:
    """A StreamWriter stand-in collecting what the server would send."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(bytes(data))

    async def drain(self):
        return None

    def close(self):
        return None

    async def wait_closed(self):
        return None

    @property
    def data(self):
        return b"".join(self.chunks)


def _run_connection(app, payload):
    """Feed raw bytes through the server loop; returns what it wrote."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        writer = _Writer()
        await _handle_connection(app, reader, writer)
        return writer.data

    return asyncio.run(go())


class TestHttp11Parser:
    def test_pipelined_keep_alive_requests(self, setting):
        _, app = setting
        first = b"GET /healthz HTTP/1.1\r\n\r\n"
        second = (
            b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n"
        )

        data = _run_connection(app, first + second)
        responses = data.split(b"HTTP/1.1 ")
        assert len(responses) == 3  # leading empty split + two replies
        assert responses[1].startswith(b"200 OK")
        assert responses[2].startswith(b"200 OK")
        assert b"road_http_requests_total" in data

    def test_post_body_via_content_length(self, setting):
        service, app = setting
        body = json.dumps(
            {"query": encode_query(KNNQuery(0, 2))}
        ).encode()
        request = (
            b"POST /query HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        head, _, payload = _run_connection(app, request).partition(
            b"\r\n\r\n"
        )
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert decode_result(
            json.loads(payload)["result"]
        ) == service.run_many([KNNQuery(0, 2)])[0]

    def test_chunked_bodies_answer_501(self, setting):
        _, app = setting
        request = (
            b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        assert _run_connection(app, request).startswith(b"HTTP/1.1 501")

    def test_malformed_request_line_answers_400(self, setting):
        _, app = setting
        data = _run_connection(app, b"BOGUS\r\n\r\n")
        assert data.startswith(b"HTTP/1.1 400")
