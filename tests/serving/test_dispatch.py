"""The query-dispatch protocol: registry round-trips, typed errors.

The satellite contract of the serving refactor: every engine answers
``execute`` / ``execute_many`` with the same signatures, unknown query
types raise a typed :class:`UnsupportedQueryError` naming the engine,
and ``directory=`` is honoured (and rejected with
:class:`UnknownDirectoryError`) uniformly — previously the charged path
raised ``KeyError`` while the frozen path silently ignored the argument.
"""

import pytest

from repro.baselines import (
    DistanceIndexEngine,
    EuclideanEngine,
    NetworkExpansionEngine,
    ROADEngine,
)
from repro.core.framework import ROAD
from repro.graph.generators import grid_network
from repro.objects.placement import place_uniform
from repro.queries.types import AggregateKNNQuery, KNNQuery, Predicate, RangeQuery
from repro.queries.workload import mixed_workload
from repro.serving import (
    QueryExecutor,
    UnknownDirectoryError,
    UnsupportedQueryError,
    lookup_handler,
    register_handler,
    supported_queries,
)
from tests.oracle import assert_same_result


@pytest.fixture(scope="module")
def setting():
    network = grid_network(8, 8, seed=13)
    objects = place_uniform(
        network, 16, seed=5, attr_choices={"type": ["a", "b"]}
    )
    road = ROAD.build(network.copy(), levels=3, fanout=4)
    road.attach_objects(objects)
    executors = {
        "ROAD": road,
        "FrozenRoad": road.freeze(),
        "ROADEngine-charged": ROADEngine(
            network.copy(), objects, levels=3, mode="charged"
        ),
        "ROADEngine-frozen": ROADEngine(
            network.copy(), objects, levels=3, mode="frozen"
        ),
        "NetExp": NetworkExpansionEngine(network.copy(), objects),
        "Euclidean": EuclideanEngine(network.copy(), objects),
        "DistIdx": DistanceIndexEngine(network.copy(), objects),
    }
    return network, objects, executors


ALL = [
    "ROAD",
    "FrozenRoad",
    "ROADEngine-charged",
    "ROADEngine-frozen",
    "NetExp",
    "Euclidean",
    "DistIdx",
]
#: Executors with a multi-source expansion (aggregate kNN support).
AGGREGATE_CAPABLE = ["ROAD", "FrozenRoad", "ROADEngine-charged", "ROADEngine-frozen"]


class TestRegistryRoundTrip:
    """The registry serves every query class on every engine uniformly."""

    @pytest.mark.parametrize("name", ALL)
    def test_all_executors_are_query_executors(self, setting, name):
        _, _, executors = setting
        assert isinstance(executors[name], QueryExecutor)

    @pytest.mark.parametrize("name", ALL)
    def test_knn_round_trip(self, setting, name):
        _, _, executors = setting
        executor = executors[name]
        got = executor.execute(KNNQuery(0, 3))
        assert got == executor.knn(0, 3)
        assert len(got) == 3

    @pytest.mark.parametrize("name", ALL)
    def test_range_round_trip(self, setting, name):
        _, _, executors = setting
        executor = executors[name]
        assert executor.execute(RangeQuery(0, 250.0)) == executor.range(0, 250.0)

    @pytest.mark.parametrize("name", AGGREGATE_CAPABLE)
    def test_aggregate_round_trip(self, setting, name):
        _, _, executors = setting
        executor = executors[name]
        query = AggregateKNNQuery((0, 20), 2)
        assert executor.execute(query) == executor.aggregate_knn((0, 20), 2)

    @pytest.mark.parametrize("name", ALL)
    def test_execute_many_matches_execute(self, setting, name):
        network, _, executors = setting
        executor = executors[name]
        queries = mixed_workload(
            network, 12, k=2, radius=200.0, seed=3,
            predicates=[Predicate.of(type="a")],
        )
        assert executor.execute_many(queries) == [
            executor.execute(q) for q in queries
        ]

    def test_all_engines_answer_equivalently(self, setting):
        network, _, executors = setting
        queries = mixed_workload(network, 10, k=3, radius=300.0, seed=7)
        reference = executors["ROAD"].execute_many(queries)
        for name in ALL[1:]:
            answers = executors[name].execute_many(queries)
            for got, want in zip(answers, reference):
                # ROAD-family paths are byte-identical; baselines may
                # differ in the last float ulp (their own precomputation
                # order), so compare through the tolerant oracle check.
                assert_same_result(
                    got, [(entry.distance, entry.object_id) for entry in want]
                )


class TestUnsupportedQuery:
    @pytest.mark.parametrize("name", ALL)
    def test_unknown_query_type_names_engine(self, setting, name):
        _, _, executors = setting
        executor = executors[name]
        with pytest.raises(UnsupportedQueryError) as excinfo:
            executor.execute("not a query")
        assert type(executor).__name__ in str(excinfo.value)
        assert excinfo.value.engine == type(executor).__name__
        assert excinfo.value.query_type == "str"
        # The typed error is still a TypeError for pre-registry callers.
        assert isinstance(excinfo.value, TypeError)

    @pytest.mark.parametrize("name", ["NetExp", "Euclidean", "DistIdx"])
    def test_baselines_reject_aggregate_by_name(self, setting, name):
        _, _, executors = setting
        executor = executors[name]
        query = AggregateKNNQuery((0, 5), 2)
        assert not executor.supports(query)
        with pytest.raises(UnsupportedQueryError, match=type(executor).__name__):
            executor.execute(query)
        with pytest.raises(UnsupportedQueryError):
            executor.execute_many([KNNQuery(0, 1), query])

    @pytest.mark.parametrize("name", ALL)
    def test_supports_agrees_with_supported_queries(self, setting, name):
        _, _, executors = setting
        executor = executors[name]
        supported = supported_queries(type(executor))
        assert KNNQuery in supported and RangeQuery in supported
        assert (AggregateKNNQuery in supported) == (name in AGGREGATE_CAPABLE)
        for query_type in supported:
            assert lookup_handler(type(executor), query_type) is not None


class TestDirectoryDrift:
    """Regression: ``directory=`` must be honoured by *every* engine.

    The pre-registry frozen path and ROADEngine silently ignored the
    argument — a query against a directory the snapshot never compiled
    would answer from the wrong object set.
    """

    @pytest.mark.parametrize("name", ALL)
    def test_unknown_directory_raises_everywhere(self, setting, name):
        _, _, executors = setting
        executor = executors[name]
        with pytest.raises(UnknownDirectoryError) as excinfo:
            executor.execute(KNNQuery(0, 1), directory="nope")
        assert excinfo.value.directory == "nope"
        assert excinfo.value.engine == type(executor).__name__
        # Still a KeyError for pre-registry charged-path callers.
        assert isinstance(excinfo.value, KeyError)
        with pytest.raises(UnknownDirectoryError):
            executor.execute_many([KNNQuery(0, 1)], directory="nope")

    @pytest.mark.parametrize("name", ALL)
    def test_default_directory_accepted_everywhere(self, setting, name):
        _, _, executors = setting
        executor = executors[name]
        assert "objects" in executor.directory_names
        assert executor.execute(KNNQuery(0, 2), directory="objects") == (
            executor.execute(KNNQuery(0, 2))
        )

    def test_charged_named_directory_still_served(self, setting):
        network, _, executors = setting
        road = executors["ROAD"]
        extra = place_uniform(network, 6, seed=99)
        road.attach_objects(extra, name="extra")
        try:
            got = road.execute(KNNQuery(0, 2), directory="extra")
            assert {entry.object_id for entry in got} <= set(extra.ids())
        finally:
            road.detach_objects("extra")

    def test_frozen_snapshot_names_its_directory(self, setting):
        _, _, executors = setting
        frozen = executors["FrozenRoad"]
        assert frozen.directory_names == ["objects"]

    def test_non_default_directory_snapshot_serves_by_default(self, setting):
        """Regression: a snapshot frozen from a named provider must keep
        serving ``execute(query)`` without the caller re-naming the
        directory (``directory=None`` means the executor's own default)."""
        network, _, executors = setting
        road = executors["ROAD"]
        hotels = place_uniform(network, 6, seed=77)
        road.attach_objects(hotels, name="hotels")
        try:
            snapshot = road.freeze(directory="hotels")
            assert snapshot.default_directory == "hotels"
            got = snapshot.execute(KNNQuery(0, 2))
            assert got == snapshot.execute(KNNQuery(0, 2), directory="hotels")
            assert {entry.object_id for entry in got} <= set(hotels.ids())
            with pytest.raises(UnknownDirectoryError):
                snapshot.execute(KNNQuery(0, 2), directory="objects")
        finally:
            road.detach_objects("hotels")

    def test_unknown_directory_str_is_plain_sentence(self, setting):
        _, _, executors = setting
        with pytest.raises(UnknownDirectoryError) as excinfo:
            executors["ROAD"].execute(KNNQuery(0, 1), directory="nope")
        rendered = f"{excinfo.value}"
        assert rendered.startswith("ROAD serves no directory")
        assert not rendered.startswith('"')


class TestRegistryHygiene:
    def test_double_registration_rejected(self):
        class _Probe:  # pragma: no cover - never executed
            pass

        register_handler(_Probe, engine="test-hygiene")(lambda e, q, c: [])
        with pytest.raises(ValueError, match="already registered"):
            register_handler(_Probe, engine="test-hygiene")(lambda e, q, c: [])
