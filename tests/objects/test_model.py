"""SpatialObject and ObjectSet semantics."""

import pytest

from repro.graph.generators import grid_network
from repro.objects.model import ObjectError, ObjectSet, SpatialObject


class TestSpatialObject:
    def test_edge_is_canonicalised(self):
        obj = SpatialObject(1, (5, 2), 0.5)
        assert obj.edge == (2, 5)

    def test_negative_offset_rejected(self):
        with pytest.raises(ObjectError):
            SpatialObject(1, (1, 2), -0.1)

    def test_offset_from_both_endpoints(self):
        obj = SpatialObject(1, (1, 2), 3.0)
        assert obj.offset_from(1, 10.0) == pytest.approx(3.0)
        assert obj.offset_from(2, 10.0) == pytest.approx(7.0)

    def test_offset_from_non_endpoint_raises(self):
        obj = SpatialObject(1, (1, 2), 3.0)
        with pytest.raises(ObjectError):
            obj.offset_from(9, 10.0)

    def test_offset_beyond_edge_raises(self):
        obj = SpatialObject(1, (1, 2), 30.0)
        with pytest.raises(ObjectError):
            obj.offset_from(2, 10.0)

    def test_offset_clamps_float_noise(self):
        obj = SpatialObject(1, (1, 2), 10.0 + 1e-12)
        assert obj.offset_from(2, 10.0) == 0.0

    def test_attr_access(self):
        obj = SpatialObject(1, (1, 2), 0.0, {"type": "hotel"})
        assert obj.attr("type") == "hotel"
        assert obj.attr("stars") is None
        assert obj.attr("stars", "3") == "3"


class TestObjectSet:
    def test_add_and_lookup(self):
        objects = ObjectSet()
        obj = SpatialObject(7, (1, 2), 0.5)
        objects.add(obj)
        assert len(objects) == 1
        assert 7 in objects
        assert objects.get(7) is obj

    def test_duplicate_id_rejected(self):
        objects = ObjectSet([SpatialObject(1, (1, 2), 0.0)])
        with pytest.raises(ObjectError):
            objects.add(SpatialObject(1, (3, 4), 0.0))

    def test_on_edge_either_direction(self):
        objects = ObjectSet([SpatialObject(1, (2, 1), 0.5)])
        assert [o.object_id for o in objects.on_edge(1, 2)] == [1]
        assert [o.object_id for o in objects.on_edge(2, 1)] == [1]
        assert objects.on_edge(3, 4) == []

    def test_multiple_objects_per_edge(self):
        objects = ObjectSet(
            [SpatialObject(1, (1, 2), 0.2), SpatialObject(2, (1, 2), 0.8)]
        )
        assert sorted(o.object_id for o in objects.on_edge(1, 2)) == [1, 2]

    def test_remove(self):
        objects = ObjectSet([SpatialObject(1, (1, 2), 0.0)])
        removed = objects.remove(1)
        assert removed.object_id == 1
        assert len(objects) == 0
        assert objects.on_edge(1, 2) == []

    def test_remove_absent_raises(self):
        with pytest.raises(ObjectError):
            ObjectSet().remove(9)

    def test_get_absent_raises(self):
        with pytest.raises(ObjectError):
            ObjectSet().get(9)

    def test_ids_and_edges(self):
        objects = ObjectSet(
            [SpatialObject(1, (1, 2), 0.0), SpatialObject(5, (3, 4), 0.0)]
        )
        assert sorted(objects.ids()) == [1, 5]
        assert sorted(objects.edges()) == [(1, 2), (3, 4)]

    def test_next_id(self):
        assert ObjectSet().next_id() == 0
        objects = ObjectSet([SpatialObject(41, (1, 2), 0.0)])
        assert objects.next_id() == 42

    def test_validate_against_network(self):
        net = grid_network(3, 3, seed=0)
        u, v, d = next(net.edges())
        good = ObjectSet([SpatialObject(1, (u, v), d / 2)])
        good.validate_against(net)

        missing_edge = ObjectSet([SpatialObject(1, (0, 8), 0.0)])
        with pytest.raises(ObjectError):
            missing_edge.validate_against(net)

        too_far = ObjectSet([SpatialObject(1, (u, v), d * 2)])
        with pytest.raises(ObjectError):
            too_far.validate_against(net)
