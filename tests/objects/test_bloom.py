"""Bloom filter: no false negatives, unions, sizing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.objects.bloom import BloomFilter


class TestBloomFilter:
    def test_added_items_always_found(self):
        bloom = BloomFilter(num_bits=256)
        for i in range(50):
            bloom.add(i)
        assert all(i in bloom for i in range(50))
        assert len(bloom) == 50

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter()
        assert 1 not in bloom
        assert len(bloom) == 0

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(num_bits=1024, expected_items=50)
        for i in range(50):
            bloom.add(i)
        false_hits = sum(1 for i in range(1000, 3000) if i in bloom)
        assert false_hits / 2000 < 0.1

    def test_union_preserves_membership(self):
        a = BloomFilter(num_bits=128)
        b = BloomFilter(num_bits=128)
        a.add("x")
        b.add("y")
        merged = a.union(b)
        assert "x" in merged and "y" in merged
        assert len(merged) == 2

    def test_union_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=128).union(BloomFilter(num_bits=256))

    def test_clear(self):
        bloom = BloomFilter()
        bloom.add(1)
        bloom.clear()
        assert 1 not in bloom
        assert bloom.fill_ratio == 0.0

    def test_sizing_hint_sets_hash_count(self):
        assert 1 <= BloomFilter(num_bits=256, expected_items=32).num_hashes <= 8

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(num_bits=4)

    def test_size_bytes(self):
        assert BloomFilter(num_bits=256).size_bytes == 32

    def test_fp_rate_estimate_monotone(self):
        bloom = BloomFilter(num_bits=64, num_hashes=3)
        assert bloom.false_positive_rate() == 0.0
        bloom.add(1)
        low = bloom.false_positive_rate()
        for i in range(2, 30):
            bloom.add(i)
        assert bloom.false_positive_rate() > low

    def test_deterministic_across_instances(self):
        a = BloomFilter(num_bits=128)
        b = BloomFilter(num_bits=128)
        a.add("object-7")
        b.add("object-7")
        assert a._bits == b._bits

    @given(st.lists(st.integers(), max_size=100))
    def test_no_false_negatives_property(self, items):
        bloom = BloomFilter(num_bits=512)
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)
