"""Placement generators: counts, validity, distributions, determinism."""

import pytest

from repro.graph.generators import grid_network
from repro.objects.placement import place_clustered, place_uniform


@pytest.fixture
def net():
    return grid_network(8, 8, seed=2)


class TestUniform:
    def test_count_and_validity(self, net):
        objects = place_uniform(net, 50, seed=1)
        assert len(objects) == 50
        objects.validate_against(net)

    def test_deterministic(self, net):
        a = place_uniform(net, 20, seed=3)
        b = place_uniform(net, 20, seed=3)
        assert [(o.edge, o.delta) for o in a] == [(o.edge, o.delta) for o in b]

    def test_seeds_differ(self, net):
        a = place_uniform(net, 20, seed=3)
        b = place_uniform(net, 20, seed=4)
        assert [(o.edge, o.delta) for o in a] != [(o.edge, o.delta) for o in b]

    def test_attr_choices(self, net):
        objects = place_uniform(
            net, 30, seed=5, attr_choices={"type": ["a", "b"]}
        )
        values = {o.attr("type") for o in objects}
        assert values <= {"a", "b"}
        assert len(values) == 2  # 30 draws essentially surely hit both

    def test_spread_over_many_edges(self, net):
        objects = place_uniform(net, 100, seed=6)
        assert len(objects.edges()) > 30

    def test_empty_network_rejected(self):
        from repro.graph.network import RoadNetwork

        empty = RoadNetwork()
        empty.add_node(0)
        with pytest.raises(ValueError):
            place_uniform(empty, 1)


class TestClustered:
    def test_count_and_validity(self, net):
        objects = place_clustered(net, 40, clusters=3, seed=1)
        assert len(objects) == 40
        objects.validate_against(net)

    def test_concentration(self, net):
        """Clustered placement touches far fewer edges than uniform."""
        clustered = place_clustered(net, 100, clusters=2, seed=7, spread=2)
        uniform = place_uniform(net, 100, seed=7)
        assert len(clustered.edges()) < len(uniform.edges())

    def test_cluster_count_validation(self, net):
        with pytest.raises(ValueError):
            place_clustered(net, 10, clusters=0)

    def test_deterministic(self, net):
        a = place_clustered(net, 15, clusters=3, seed=9)
        b = place_clustered(net, 15, clusters=3, seed=9)
        assert [(o.edge, o.delta) for o in a] == [(o.edge, o.delta) for o in b]

    def test_attrs_assigned(self, net):
        objects = place_clustered(
            net, 10, clusters=2, seed=1, attr_choices={"type": ["x"]}
        )
        assert all(o.attr("type") == "x" for o in objects)
