"""Attribute signatures: matching semantics, unions, no false negatives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.objects.signature import Signature, SignatureScheme


@pytest.fixture
def scheme():
    return SignatureScheme(num_bits=128, bits_per_value=4)


class TestScheme:
    def test_value_signature_weight(self, scheme):
        sig = scheme.value_signature("type", "hotel")
        assert bin(sig).count("1") == 4

    def test_value_signature_deterministic(self, scheme):
        assert scheme.value_signature("type", "hotel") == scheme.value_signature(
            "type", "hotel"
        )

    def test_key_and_value_both_matter(self, scheme):
        assert scheme.value_signature("type", "a") != scheme.value_signature(
            "kind", "a"
        )
        assert scheme.value_signature("type", "a") != scheme.value_signature(
            "type", "b"
        )

    def test_object_signature_superimposes(self, scheme):
        combined = scheme.object_signature({"type": "hotel", "stars": "4"})
        assert combined & scheme.value_signature("type", "hotel")
        assert combined & scheme.value_signature("stars", "4")

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SignatureScheme(num_bits=4)
        with pytest.raises(ValueError):
            SignatureScheme(num_bits=64, bits_per_value=0)


class TestSignature:
    def test_empty_signature_matches_nothing(self, scheme):
        assert not Signature(scheme).may_contain({})

    def test_added_attrs_always_match(self, scheme):
        sig = Signature(scheme)
        sig.add_object({"type": "hotel"})
        assert sig.may_contain({"type": "hotel"})
        assert sig.may_contain({})  # unconstrained query matches non-empty

    def test_wrong_value_usually_rejected(self, scheme):
        sig = Signature(scheme)
        sig.add_object({"type": "hotel"})
        misses = sum(
            not sig.may_contain({"type": f"value-{i}"}) for i in range(50)
        )
        assert misses > 40  # a few false positives are expected, most miss

    def test_union(self, scheme):
        a = Signature(scheme)
        a.add_object({"type": "hotel"})
        b = Signature(scheme)
        b.add_object({"type": "fuel"})
        merged = a.union(b)
        assert merged.may_contain({"type": "hotel"})
        assert merged.may_contain({"type": "fuel"})
        assert merged.count == 2

    def test_union_width_mismatch_rejected(self, scheme):
        other = Signature(SignatureScheme(num_bits=64))
        with pytest.raises(ValueError):
            Signature(scheme).union(other)

    def test_clear(self, scheme):
        sig = Signature(scheme)
        sig.add_object({"type": "hotel"})
        sig.clear()
        assert not sig.may_contain({"type": "hotel"})

    def test_size_bytes(self, scheme):
        assert Signature(scheme).size_bytes == 16

    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["type", "brand", "city"]),
                st.text(min_size=1, max_size=6),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_no_false_negatives_property(self, attr_dicts):
        scheme = SignatureScheme(num_bits=256, bits_per_value=3)
        sig = Signature(scheme)
        for attrs in attr_dicts:
            sig.add_object(attrs)
        for attrs in attr_dicts:
            assert sig.may_contain(attrs)
