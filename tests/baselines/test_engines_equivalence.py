"""All four engines must return identical answers (the paper's ground rule)."""

import pytest

from repro.baselines import (
    DistanceIndexEngine,
    EuclideanEngine,
    NetworkExpansionEngine,
    ROADEngine,
)
from repro.graph.generators import grid_network
from repro.objects.placement import place_uniform
from repro.queries.types import Predicate
from tests.oracle import assert_same_result, brute_knn, brute_range


@pytest.fixture(scope="module")
def setting():
    network = grid_network(9, 9, seed=11)
    objects = place_uniform(network, 14, seed=4, attr_choices={"type": ["a", "b"]})
    engines = [
        NetworkExpansionEngine(network.copy(), objects),
        EuclideanEngine(network.copy(), objects),
        DistanceIndexEngine(network.copy(), objects),
        ROADEngine(network.copy(), objects, levels=3),
    ]
    return network, objects, engines


class TestKnnEquivalence:
    @pytest.mark.parametrize("nq", [0, 12, 40, 44, 80])
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_knn_matches_oracle(self, setting, nq, k):
        network, objects, engines = setting
        expected = brute_knn(network, objects, nq, k)
        for engine in engines:
            got = engine.knn(nq, k)
            assert_same_result(got, expected), engine.name

    def test_k_larger_than_object_count(self, setting):
        network, objects, engines = setting
        expected = brute_knn(network, objects, 5, 100)
        for engine in engines:
            assert_same_result(engine.knn(5, 100), expected)

    def test_invalid_k_rejected_by_all(self, setting):
        _, _, engines = setting
        for engine in engines:
            with pytest.raises(ValueError):
                engine.knn(0, 0)

    def test_predicate_knn(self, setting):
        network, objects, engines = setting
        pred = Predicate.of(type="a")
        expected = brute_knn(network, objects, 30, 4, pred)
        for engine in engines:
            assert_same_result(engine.knn(30, 4, pred), expected)


class TestRangeEquivalence:
    @pytest.mark.parametrize("nq,r", [(0, 150.0), (40, 300.0), (80, 500.0)])
    def test_range_matches_oracle(self, setting, nq, r):
        network, objects, engines = setting
        expected = brute_range(network, objects, nq, r)
        for engine in engines:
            assert_same_result(engine.range(nq, r), expected), engine.name

    def test_radius_zero(self, setting):
        network, objects, engines = setting
        expected = brute_range(network, objects, 7, 0.0)
        for engine in engines:
            assert_same_result(engine.range(7, 0.0), expected)

    def test_negative_radius_rejected(self, setting):
        _, _, engines = setting
        for engine in engines:
            with pytest.raises(ValueError):
                engine.range(0, -1.0)

    def test_predicate_range(self, setting):
        network, objects, engines = setting
        pred = Predicate.of(type="b")
        expected = brute_range(network, objects, 44, 400.0, pred)
        for engine in engines:
            assert_same_result(engine.range(44, 400.0, pred), expected)


class TestMaintenanceEquivalence:
    def test_object_churn_consistency(self):
        network = grid_network(7, 7, seed=3)
        objects = place_uniform(network, 8, seed=8)
        engines = [
            NetworkExpansionEngine(network.copy(), objects),
            EuclideanEngine(network.copy(), objects),
            DistanceIndexEngine(network.copy(), objects),
            ROADEngine(network.copy(), objects, levels=2),
        ]
        from repro.objects.model import SpatialObject

        u, v, d = next(network.edges())
        new_obj = SpatialObject(objects.next_id(), (u, v), d / 3)
        for engine in engines:
            engine.insert_object(new_obj)
        victim = objects.ids()[0]
        for engine in engines:
            engine.delete_object(victim)
        reference = engines[0]
        expected = brute_knn(network, reference.objects, 24, 5)
        for engine in engines:
            assert_same_result(engine.knn(24, 5), expected), engine.name

    def test_edge_update_consistency(self):
        network = grid_network(7, 7, seed=5)
        objects = place_uniform(network, 8, seed=9)
        engines = [
            NetworkExpansionEngine(network.copy(), objects),
            EuclideanEngine(network.copy(), objects),
            DistanceIndexEngine(network.copy(), objects),
            ROADEngine(network.copy(), objects, levels=2),
        ]
        u, v, d = next(network.edges())
        for engine in engines:
            engine.update_edge_distance(u, v, d * 4)
        reference = engines[0]
        # use the engine's own network (each got a copy) for the oracle
        expected = brute_knn(
            reference.network, reference.objects, 10, 5
        )
        for engine in engines:
            assert_same_result(engine.knn(10, 5), expected), engine.name


class TestAccounting:
    def test_all_engines_report_sizes(self, setting):
        _, _, engines = setting
        for engine in engines:
            assert engine.index_size_bytes > 0
            assert engine.build_seconds > 0

    def test_distidx_largest_index(self, setting):
        """Figure 13's headline: DistIdx dwarfs the others."""
        _, _, engines = setting
        sizes = {e.name: e.index_size_bytes for e in engines}
        assert sizes["DistIdx"] >= max(
            sizes["NetExp"], sizes["Euclidean"]
        )

    def test_queries_charge_io_on_cold_cache(self, setting):
        _, _, engines = setting
        for engine in engines:
            engine.reset_io()
            engine.knn(40, 3)
            assert engine.pager.stats.reads > 0, engine.name

    def test_execute_dispatch(self, setting):
        from repro.queries.types import KNNQuery, RangeQuery

        _, _, engines = setting
        for engine in engines:
            assert engine.execute(KNNQuery(0, 2))
            engine.execute(RangeQuery(0, 100.0))
            with pytest.raises(TypeError):
                engine.execute(42)
