"""Distance Index specifics: signatures, next hops, rebuild costs."""

import math

import pytest

from repro.baselines.distance_index import CHUNK_SIZE, DistanceIndexEngine
from repro.graph.generators import chain_network, grid_network
from repro.objects.model import ObjectSet, SpatialObject
from repro.objects.placement import place_uniform


@pytest.fixture
def engine():
    net = grid_network(6, 6, seed=4)
    objects = place_uniform(net, 6, seed=6)
    return DistanceIndexEngine(net, objects)


class TestSignatures:
    def test_every_node_has_full_signature(self, engine):
        for node in engine.network.node_ids():
            signature = engine._read_signature(node)
            assert len(signature) == len(engine.objects)

    def test_signature_distances_exact(self, engine):
        from tests.oracle import brute_object_distances

        for node in list(engine.network.node_ids())[:8]:
            expected = dict(
                (i, d)
                for d, i in brute_object_distances(
                    engine.network, engine.objects, node
                )
            )
            for object_id, distance, _ in engine._read_signature(node):
                assert distance == pytest.approx(expected[object_id])

    def test_chunking_splits_large_signatures(self):
        net = chain_network(12)
        objects = ObjectSet(
            SpatialObject(i, (j, j + 1), 0.5)
            for i, j in enumerate([n % 11 for n in range(CHUNK_SIZE + 20)])
        )
        engine = DistanceIndexEngine(net, objects)
        signature = engine._read_signature(0)
        assert len(signature) == CHUNK_SIZE + 20

    def test_unreachable_objects_marked_infinite(self):
        from repro.graph.network import RoadNetwork

        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, i, 0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        objects = ObjectSet([SpatialObject(1, (2, 3), 0.5)])
        engine = DistanceIndexEngine(net, objects)
        signature = engine._read_signature(0)
        assert math.isinf(signature[0][1])
        assert engine.knn(0, 1) == []


class TestNextHops:
    def test_path_to_object_follows_shortest_path(self, engine):
        target = engine.objects.ids()[0]
        obj = engine.objects.get(target)
        path = engine.path_to_object(0, target)
        assert path[0] == 0
        assert path[-1] in obj.edge
        # consecutive hops are adjacent
        for a, b in zip(path, path[1:]):
            assert engine.network.has_edge(a, b)
        # path length equals signature distance minus the offset
        signature = dict(
            (oid, d) for oid, d, _ in engine._read_signature(0)
        )
        walked = sum(
            engine.network.edge_distance(a, b) for a, b in zip(path, path[1:])
        )
        end_delta = obj.offset_from(
            path[-1], engine.network.edge_distance(*obj.edge)
        )
        assert walked + end_delta == pytest.approx(signature[target])

    def test_path_to_unreachable_raises(self):
        from repro.graph.network import RoadNetwork

        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, i, 0)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        engine = DistanceIndexEngine(net, ObjectSet([SpatialObject(1, (2, 3), 0.5)]))
        with pytest.raises(KeyError):
            engine.path_to_object(0, 1)


class TestRebuilds:
    def test_insert_updates_all_signatures(self, engine):
        u, v, d = next(engine.network.edges())
        new_id = engine.objects.next_id()
        engine.insert_object(SpatialObject(new_id, (u, v), d / 2))
        for node in list(engine.network.node_ids())[:5]:
            ids = [oid for oid, _, _ in engine._read_signature(node)]
            assert new_id in ids

    def test_delete_shrinks_signatures(self, engine):
        victim = engine.objects.ids()[0]
        before = len(engine._read_signature(0))
        engine.delete_object(victim)
        after = len(engine._read_signature(0))
        assert after == before - 1

    def test_index_size_grows_with_objects(self):
        net = grid_network(6, 6, seed=4)
        small = DistanceIndexEngine(net.copy(), place_uniform(net, 4, seed=1))
        large = DistanceIndexEngine(net.copy(), place_uniform(net, 40, seed=1))
        assert large.index_size_bytes > small.index_size_bytes
