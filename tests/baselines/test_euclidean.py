"""Euclidean engine specifics: metric soundness, IER behaviour."""

import pytest

from repro.baselines.engine import EngineError
from repro.baselines.euclidean import EuclideanEngine
from repro.graph.generators import grid_network, travel_time_metric
from repro.objects.placement import place_uniform


class TestMetricSoundness:
    def test_travel_time_metric_refused(self):
        base = grid_network(5, 5, seed=1)
        timed = travel_time_metric(base, seed=2)
        objects = place_uniform(timed, 5, seed=3)
        with pytest.raises(EngineError):
            EuclideanEngine(timed, objects)

    def test_override_allows_unsound_metric(self):
        base = grid_network(5, 5, seed=1)
        timed = travel_time_metric(base, seed=2)
        objects = place_uniform(timed, 5, seed=3)
        engine = EuclideanEngine(timed, objects, unsafe_metric_override=True)
        assert engine.knn(0, 1)  # runs, correctness not guaranteed

    def test_distance_metric_accepted(self):
        net = grid_network(5, 5, seed=1)
        engine = EuclideanEngine(net, place_uniform(net, 5, seed=3))
        assert engine.name == "Euclidean"


class TestIERBehaviour:
    @pytest.fixture
    def engine(self):
        net = grid_network(8, 8, seed=2)
        objects = place_uniform(net, 10, seed=5)
        return EuclideanEngine(net, objects)

    def test_interpolated_positions_on_edge(self, engine):
        for obj in engine.objects:
            x, y = engine._interpolate(obj)
            u, v = obj.edge
            ux, uy = engine.network.coords(u)
            vx, vy = engine.network.coords(v)
            assert min(ux, vx) - 1e-9 <= x <= max(ux, vx) + 1e-9
            assert min(uy, vy) - 1e-9 <= y <= max(uy, vy) + 1e-9

    def test_knn_verified_distances_are_network_distances(self, engine):
        from tests.oracle import brute_knn

        got = engine.knn(0, 3)
        expected = brute_knn(engine.network, engine.objects, 0, 3)
        for entry, (d, _) in zip(got, expected):
            assert entry.distance == pytest.approx(d)

    def test_euclidean_lower_bound_holds(self, engine):
        """Generator networks must satisfy the bound the engine relies on."""
        import math

        for obj in list(engine.objects)[:5]:
            x, y = engine._interpolate(obj)
            for nq in (0, 36, 63):
                qx, qy = engine.network.coords(nq)
                euclid = math.hypot(qx - x, qy - y)
                network_distance = engine._network_distance(nq, obj)
                assert network_distance is not None
                assert euclid <= network_distance + 1e-6

    def test_disconnected_candidate_skipped(self):
        from repro.graph.network import RoadNetwork
        from repro.objects.model import ObjectSet, SpatialObject

        net = RoadNetwork()
        for i, (x, y) in enumerate([(0, 0), (1, 0), (10, 0), (11, 0)]):
            net.add_node(i, x, y)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)  # separate component
        objects = ObjectSet(
            [SpatialObject(1, (0, 1), 0.5), SpatialObject(2, (2, 3), 0.5)]
        )
        engine = EuclideanEngine(net, objects)
        got = engine.knn(0, 5)
        assert [e.object_id for e in got] == [1]  # object 2 unreachable

    def test_range_circle_vs_box(self, engine):
        """Window candidates outside the circle must be rejected."""
        got = engine.range(0, 120.0)
        for entry in got:
            assert entry.distance <= 120.0 + 1e-9
