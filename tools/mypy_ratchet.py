#!/usr/bin/env python3
"""Baseline-ratcheted mypy gate (the CI ``analysis`` job's second half).

Runs mypy with the repo's pyproject config and diffs the errors against
the committed baseline (``tools/mypy_baseline.txt``):

* an error **not** in the baseline fails the run — new typing debt
  cannot land;
* baseline entries that no longer fire are reported as ratchet
  progress — run ``python tools/mypy_ratchet.py --update`` to shrink
  (never grow) the committed file.

Errors are normalised to ``path: [code] message`` — line numbers are
dropped so unrelated edits above an existing (baselined) error don't
break the gate.
"""

from __future__ import annotations

import argparse
import importlib.util
import re
import subprocess
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = Path(__file__).resolve().parent / "mypy_baseline.txt"

#: ``src/repro/x.py:12: error: message  [code]``
_ERROR_LINE = re.compile(
    r"^(?P<path>[^:]+):\d+(?::\d+)?: error: (?P<message>.*?)"
    r"(?:\s+\[(?P<code>[\w-]+)\])?$"
)


def run_mypy() -> tuple[list[str], str]:
    """Run mypy; return (normalised error keys, raw output)."""
    if importlib.util.find_spec("mypy") is None:
        raise SystemExit(
            "mypy is not installed — the ratchet must never pass vacuously; "
            "install it with pip install -e '.[dev]'"
        )
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    raw = proc.stdout + proc.stderr
    if proc.returncode not in (0, 1):  # 2 = usage/crash, not findings
        print(raw, file=sys.stderr)
        raise SystemExit(f"mypy did not run cleanly (exit {proc.returncode})")
    keys = []
    for line in raw.splitlines():
        match = _ERROR_LINE.match(line.strip())
        if match:
            code = match.group("code") or "misc"
            keys.append(
                f"{match.group('path')}: [{code}] {match.group('message')}"
            )
    return keys, raw


def load_baseline() -> list[str]:
    if not BASELINE.exists():
        return []
    return [
        line
        for line in BASELINE.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.startswith("#")
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current mypy output",
    )
    args = parser.parse_args(argv)

    current, raw = run_mypy()
    baseline = load_baseline()

    if args.update:
        header = (
            "# mypy ratchet baseline — known typing debt, one normalised\n"
            "# error per line.  Shrink only: regenerate with\n"
            "#   python tools/mypy_ratchet.py --update\n"
        )
        BASELINE.write_text(
            header + "".join(f"{key}\n" for key in sorted(current)),
            encoding="utf-8",
        )
        print(f"baseline updated: {len(current)} entr(y/ies)")
        return 0

    new = Counter(current) - Counter(baseline)
    fixed = Counter(baseline) - Counter(current)
    if fixed:
        print(f"ratchet progress: {sum(fixed.values())} baseline error(s) "
              f"no longer fire — run tools/mypy_ratchet.py --update")
    if new:
        print("new mypy errors (not in tools/mypy_baseline.txt):")
        for key, count in sorted(new.items()):
            suffix = f"  (x{count})" if count > 1 else ""
            print(f"  {key}{suffix}")
        print(f"\n{sum(new.values())} new error(s); full mypy output:\n")
        print(raw)
        return 1
    print(f"mypy ratchet: clean ({len(current)} baselined, 0 new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
