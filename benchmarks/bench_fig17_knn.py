"""Figure 17: kNN query performance (a: vs k, b: vs |O|, c: vs network)."""

from conftest import publish

from repro.eval.config import OBJECT_COUNTS
from repro.eval.datasets import load_dataset
from repro.eval.experiments import (
    fig17a_knn_vs_k,
    fig17b_knn_vs_objects,
    fig17c_knn_vs_network,
)
from repro.eval.reporting import dominance
from repro.eval.runner import build_engines, make_objects
from repro.queries.types import KNNQuery


def test_fig17a_report(results_dir, benchmark):
    """kNN time vs k on CA, |O|=100."""
    result = benchmark.pedantic(fig17a_knn_vs_k, rounds=1, iterations=1)
    assert dominance(result, "time_ms") != "Euclidean"
    # Paper: "Euclidean takes the longest processing time for all
    # evaluated k's" — compare within each k.
    by_k = {}
    for row in result.rows:
        by_k.setdefault(row["k"], {})[row["engine"]] = row["time_ms"]
    for k, engines in by_k.items():
        euclid = engines.pop("Euclidean")
        assert euclid > max(engines.values()), (
            f"Euclidean must be slowest at k={k}"
        )
    publish(result, results_dir)


def test_fig17b_report(results_dir, benchmark):
    """kNN time vs |O| on CA, k=5 (the ROAD/NetExp convergence figure)."""
    result = benchmark.pedantic(
        lambda: fig17b_knn_vs_objects(object_counts=OBJECT_COUNTS),
        rounds=1,
        iterations=1,
    )
    road = [r["time_ms"] for r in result.rows if r["engine"] == "ROAD"]
    netexp = [r["time_ms"] for r in result.rows if r["engine"] == "NetExp"]
    # Paper shape: both expansion-based engines speed up as objects densify,
    # and the gap between them narrows.
    assert road[-1] < road[0], "ROAD must get faster as |O| grows"
    assert netexp[-1] < netexp[0], "NetExp must get faster as |O| grows"
    result.note(
        "density note: mini-scale |O|=N corresponds to paper |O|=10N "
        "(1:10 network)"
    )
    publish(result, results_dir)


def test_fig17c_report(results_dir, benchmark):
    """kNN time vs network, |O|=100, k=5."""
    result = benchmark.pedantic(fig17c_knn_vs_network, rounds=1, iterations=1)
    assert dominance(result, "time_ms") != "Euclidean"
    publish(result, results_dir)


def test_bench_road_knn_query(benchmark):
    """Benchmark: one cold ROAD 5NN query on CA (the headline operation)."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 100, seed=0)
    engine = build_engines(dataset, objects, engines=("ROAD",))["ROAD"]
    nodes = sorted(dataset.network.node_ids())
    query = KNNQuery(nodes[len(nodes) // 2], 5)

    def run():
        engine.reset_io()
        return engine.execute(query)

    result = benchmark(run)
    assert len(result) == 5


def test_bench_netexp_knn_query(benchmark):
    """Benchmark: the same query under network expansion."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 100, seed=0)
    engine = build_engines(dataset, objects, engines=("NetExp",))["NetExp"]
    nodes = sorted(dataset.network.node_ids())
    query = KNNQuery(nodes[len(nodes) // 2], 5)

    def run():
        engine.reset_io()
        return engine.execute(query)

    result = benchmark(run)
    assert len(result) == 5
