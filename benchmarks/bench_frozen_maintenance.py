"""Frozen-snapshot maintenance: delta-patch vs full re-freeze.

The frozen analog of Figures 15/16.  The paper's headline maintenance
claim is locality — update cost scales with the perturbation, not the
network — and the compiled serving path must keep that property:
:meth:`FrozenRoad.apply` rewrites only the CSR spans named by each
update's :class:`MaintenanceReport`, where the pre-patch lifecycle paid a
full O(network) ``freeze()`` per update burst.

This bench applies bursts of edge-weight updates (and object churn) on
the Table-1 default network and races the two reconciliation paths over
identical update sequences:

* **patch** — ``frozen.apply(report)`` per update, snapshot kept live;
* **refreeze** — one full ``road.freeze()`` after the burst (the lazy
  re-freeze the invalidate lifecycle pays on the next query).

After every burst the patched snapshot is probed against the fresh
freeze — results *and* SearchStats must be identical (equivalence
violations are counted and must be zero).  Acceptance: >= 10x median
speedup for single-edge-update bursts.

Run standalone (``python benchmarks/bench_frozen_maintenance.py``) or via
pytest with the usual harness fixtures.  ``REPRO_BENCH_SMOKE=1`` shrinks
the network and trial counts for CI smoke runs (report-only, no bar).
"""

from __future__ import annotations

import os
import random
import statistics
import sys
import time
from collections import Counter
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH/pytest-pythonpath)
except ModuleNotFoundError:  # standalone run from a clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.framework import ROAD
from repro.eval.config import DEFAULT_OBJECTS
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.metrics import snapshot_divergences
from repro.eval.reporting import ExperimentResult
from repro.eval.runner import make_objects
from repro.objects.model import SpatialObject

#: The acceptance bar for single-edge-update bursts.
MIN_PATCH_SPEEDUP = 10.0

#: Updates per burst (the x-axis of the Figure-16-shaped sweep).
UPDATE_COUNTS = (1, 2, 5, 10)


def run_maintenance_comparison(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    num_nodes=None,
    update_counts=UPDATE_COUNTS,
    trials: int = 15,
    churn_trials: int = 10,
    probes: int = 3,
    seed: int = 0,
):
    """Race delta-patch vs full re-freeze over identical update sequences.

    Returns ``(result, speedups, outcomes, violations)``: the rendered
    table data, the per-workload median speedups, the patch/fallback
    outcome counts, and the total equivalence violations (must be zero).
    """
    dataset = load_dataset(network, num_nodes)
    net = dataset.network.copy()  # datasets are memoised; never mutate them
    objects = make_objects(net, num_objects, seed=seed)
    road = ROAD.build(net, levels=dataset_levels(network), fanout=4)
    directory = road.attach_objects(objects)
    frozen = road.freeze()

    rnd = random.Random(seed)
    edges = sorted((u, v) for u, v, _ in net.edges())
    result = ExperimentResult(
        "frozen_maintenance",
        f"FrozenRoad delta-patch vs full re-freeze on {network} "
        f"({net.num_nodes:,} nodes, |O|={num_objects})",
        [
            "workload", "patch_ms", "refreeze_ms", "speedup",
            "patched", "fallbacks", "violations",
        ],
    )
    speedups = {}
    outcomes: Counter = Counter()
    total_violations = 0

    def run_burst_workload(label, make_reports, rounds):
        nonlocal total_violations
        patch_times, refreeze_times = [], []
        burst_outcomes: Counter = Counter()
        violations = 0
        for _ in range(rounds):
            reports = make_reports()
            start = time.perf_counter()
            for report in reports:
                burst_outcomes[frozen.apply(report)] += 1
            patch_times.append((time.perf_counter() - start) * 1000.0)
            start = time.perf_counter()
            fresh = road.freeze()
            refreeze_times.append((time.perf_counter() - start) * 1000.0)
            violations += len(
                snapshot_divergences(rnd, frozen, fresh, probes=probes)
            )
        patch_ms = statistics.median(patch_times)
        refreeze_ms = statistics.median(refreeze_times)
        speedup = refreeze_ms / patch_ms if patch_ms > 0 else float("inf")
        speedups[label] = speedup
        outcomes.update(burst_outcomes)
        total_violations += violations
        result.add_row(
            workload=label,
            patch_ms=patch_ms,
            refreeze_ms=refreeze_ms,
            speedup=speedup,
            patched=burst_outcomes["patched"],
            fallbacks=burst_outcomes["recompiled"],
            violations=violations,
        )

    # Figure-16-shaped sweep: edge-weight bursts of growing size.
    for count in update_counts:
        def weight_burst(count=count):
            reports = []
            for _ in range(count):
                u, v = edges[rnd.randrange(len(edges))]
                factor = rnd.choice([0.5, 2.0])
                reports.append(
                    road.update_edge_distance(
                        u, v, net.edge_distance(u, v) * factor
                    )
                )
            return reports

        run_burst_workload(f"edges={count}", weight_burst, trials)

    # Figure-15-shaped workload: object churn (one insert + one delete).
    def churn_burst():
        u, v = edges[rnd.randrange(len(edges))]
        insert = road.insert_object(
            SpatialObject(
                directory.objects.next_id(), (u, v),
                rnd.uniform(0, net.edge_distance(u, v)),
                {"type": rnd.choice(["a", "b"])},
            )
        )
        victim = directory.objects.ids()[
            rnd.randrange(len(directory.objects.ids()))
        ]
        return [insert, road.delete_object(victim)]

    run_burst_workload("objects=2", churn_burst, churn_trials)

    result.note(
        f"patch outcomes across all bursts: {outcomes['patched']} patched, "
        f"{outcomes['recompiled']} recompile fallbacks"
    )
    result.note(
        "patch times are per burst (one apply per update); refreeze is the "
        "single full freeze() the invalidate lifecycle pays after a burst"
    )
    result.note(
        f"params: network={network} num_nodes={net.num_nodes} "
        f"objects={num_objects} trials={trials} probes={probes} seed={seed}"
    )
    return result, speedups, outcomes, total_violations


def test_frozen_maintenance_report(results_dir):
    """The acceptance gate: zero violations, >=10x on single-edge bursts."""
    from conftest import publish

    result, speedups, outcomes, violations = run_maintenance_comparison()
    assert violations == 0, f"patched snapshot diverged {violations} times"
    assert outcomes["patched"] > 0, "no update was ever delta-patched"
    assert speedups["edges=1"] >= MIN_PATCH_SPEEDUP, (
        f"single-edge updates: {speedups['edges=1']:.1f}x median speedup is "
        f"below the {MIN_PATCH_SPEEDUP:.0f}x bar"
    )
    publish(result, results_dir)


def test_bench_single_patch(benchmark):
    """Microbenchmark: one delta-patched edge update on CA."""
    dataset = load_dataset("CA")
    net = dataset.network.copy()
    objects = make_objects(net, DEFAULT_OBJECTS, seed=0)
    road = ROAD.build(net, levels=dataset_levels("CA"), fanout=4)
    road.attach_objects(objects)
    frozen = road.freeze()
    edges = sorted((u, v) for u, v, _ in net.edges())
    state = {"i": 0}

    def update_and_patch():
        u, v = edges[state["i"] % len(edges)]
        state["i"] += 1
        factor = 2.0 if state["i"] % 2 else 0.5
        report = road.update_edge_distance(
            u, v, net.edge_distance(u, v) * factor
        )
        frozen.apply(report)

    benchmark.pedantic(update_and_patch, rounds=10, iterations=1)


def main() -> int:
    from conftest import publish_main

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        result, speedups, outcomes, violations = run_maintenance_comparison(
            num_nodes=300, update_counts=(1, 2, 5), trials=5, churn_trials=4
        )
    else:
        result, speedups, outcomes, violations = run_maintenance_comparison()
    publish_main(
        result, smoke=smoke,
        smoke_note="smoke mode: 300-node replica, 5/4 trials — "
                   "not comparable to full CA runs",
    )
    print(
        f"single-edge speedup: {speedups['edges=1']:.1f}x "
        f"(bar: {MIN_PATCH_SPEEDUP:.0f}x), violations: {violations}, "
        f"patched/fallbacks: {outcomes['patched']}/{outcomes['recompiled']}"
    )
    if smoke:
        return 0 if violations == 0 else 1  # report-only: no speedup bar
    return (
        0
        if violations == 0 and speedups["edges=1"] >= MIN_PATCH_SPEEDUP
        else 1
    )


if __name__ == "__main__":
    raise SystemExit(main())
