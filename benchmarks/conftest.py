"""Benchmark harness configuration.

Every module regenerates one table/figure of the paper's evaluation
(Section 6).  Rendered tables are printed and saved under
``benchmarks/results/`` so runs leave comparable artifacts.

Sizing: the default (mini) scale finishes the whole suite in minutes;
``REPRO_SCALE=paper`` switches to full-size networks, and ``REPRO_QUERIES``
overrides the per-configuration query count (paper: 100).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory the rendered experiment tables are written to."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def publish(result, results_dir: Path) -> None:
    """Print and persist one experiment's rendered table + JSON artifact."""
    text = result.render()
    print("\n" + text)
    result.save(results_dir)
    result.save_json(results_dir)


def publish_main(result, *, smoke: bool = False, smoke_note: str = "") -> None:
    """Standalone-``main()`` scaffold shared by the tracked benches.

    Renders and persists the result under ``benchmarks/results``.  In
    smoke mode the experiment id gains a ``_smoke`` suffix (so
    ``BENCH_*_smoke.json`` artifacts can never be mistaken for full
    Table-1 trajectory points) and ``smoke_note`` records the shrunk
    parameters.
    """
    if smoke:
        result.experiment_id += "_smoke"
        if smoke_note:
            result.note(smoke_note)
    publish(result, RESULTS_DIR)
