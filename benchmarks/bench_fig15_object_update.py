"""Figure 15: object deletion/insertion time per engine and network."""

from conftest import publish

from repro.eval.datasets import load_dataset
from repro.eval.experiments import fig15_object_update
from repro.eval.runner import build_engines, make_objects
from repro.objects.model import SpatialObject


def test_fig15_report(results_dir, benchmark):
    """Delete + re-insert random objects; average per engine and network."""
    result = benchmark.pedantic(
        lambda: fig15_object_update(trials=5), rounds=1, iterations=1
    )
    by_engine = {}
    for row in result.rows:
        by_engine.setdefault(row["engine"], []).append(row)
    # Paper shape: DistIdx is orders of magnitude slower than everyone.
    for network_rows in zip(*(by_engine[e] for e in ("NetExp", "ROAD", "DistIdx"))):
        netexp, road, distidx = network_rows
        assert distidx["delete_s"] > 10 * road["delete_s"]
        assert distidx["insert_s"] > 10 * netexp["insert_s"]
    publish(result, results_dir)


def test_bench_road_object_insert(benchmark):
    """Benchmark: one ROAD object insertion (Section 5.1 path)."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 100, seed=0)
    engine = build_engines(dataset, objects, engines=("ROAD",))["ROAD"]
    edges = sorted((u, v) for u, v, _ in dataset.network.edges())
    counter = [engine.objects.next_id()]

    def insert_one():
        u, v = edges[counter[0] % len(edges)]
        obj = SpatialObject(counter[0], (u, v), 0.0)
        counter[0] += 1
        engine.insert_object(obj)

    benchmark.pedantic(insert_one, rounds=20, iterations=1)
