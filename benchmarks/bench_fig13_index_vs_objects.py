"""Figure 13: index construction time and size vs object cardinality."""

from conftest import publish

from repro.eval.config import OBJECT_COUNTS
from repro.eval.datasets import load_dataset
from repro.eval.experiments import fig13_index_vs_objects
from repro.eval.runner import build_engine, make_objects


def test_fig13_report(results_dir, benchmark):
    """The full |O| sweep on CA for all four engines."""
    result = benchmark.pedantic(
        lambda: fig13_index_vs_objects(object_counts=OBJECT_COUNTS),
        rounds=1,
        iterations=1,
    )
    # Shape check from the paper: DistIdx grows with |O|, ROAD stays flat.
    distidx = [
        row["size_mb"] for row in result.rows if row["engine"] == "DistIdx"
    ]
    road = [row["size_mb"] for row in result.rows if row["engine"] == "ROAD"]
    assert distidx[-1] > distidx[0] * 5, "DistIdx index must blow up with |O|"
    assert road[-1] < road[0] * 2.5, "ROAD index must stay ~flat in |O|"
    result.note(
        f"measured: DistIdx grows x{distidx[-1] / distidx[0]:.0f} from "
        f"|O|=10 to 1000; ROAD x{road[-1] / road[0]:.2f}"
    )
    publish(result, results_dir)


def test_bench_distidx_build_100_objects(benchmark):
    """Benchmark: DistIdx construction at the default |O| (the costly one)."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 100, seed=0)
    benchmark.pedantic(
        lambda: build_engine("DistIdx", dataset.network, objects),
        rounds=1,
        iterations=1,
    )


def test_bench_road_build_100_objects(benchmark):
    """Benchmark: ROAD construction at the default |O|."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 100, seed=0)
    benchmark.pedantic(
        lambda: build_engine("ROAD", dataset.network, objects, road_levels=4),
        rounds=1,
        iterations=1,
    )
