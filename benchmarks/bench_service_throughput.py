"""RoadService front-end: admission batching, thread shards, process shards.

A serving node sees many concurrent users whose queries overlap heavily
(popular places get asked for again and again).  This bench races the
front-end policies over the same frozen engine and a hot workload
(``NUM_QUERIES`` in-flight queries drawn from ``DISTINCT_QUERIES``
distinct ones):

* ``naive`` — admission batching off (``max_batch=1``, no coalescing):
  every ``submit`` flushes alone, the pre-service behaviour of looping
  ``execute`` per request;
* ``batched`` — per-predicate admission batching + coalescing: in-flight
  queries join one bucket, duplicates execute once, each bucket runs as
  a single ``execute_many``;
* ``sharded`` — the batched policy over ``REPLICA_COUNT`` read-only
  frozen replicas served from worker threads;
* ``thread-shard`` / ``process-shard`` — the CPU-heavy scenario: small
  admission batches (coalescing off) slice the workload into many
  round-robin dispatches across the shards, so the race measures where
  traversal CPU actually runs — interpreter threads serialised by the
  GIL versus worker processes attached to one shared-memory snapshot
  (``ServiceConfig(replica_mode="process")``).

Beyond wall-clock, every path records per-query latency percentiles
(``p50_ms``/``p95_ms``/``p99_ms``) into the BENCH artifact — the
``python -m repro.eval.compare`` ratchet holds tail latency, not just
the mean, to its committed baseline.

Acceptance gates: every path (and every installed array backend) must
return results byte-identical to the sync ``run_many`` reference; a
snapshot saved with :func:`repro.core.serialize.save_snapshot` and
cold-loaded via mmap must serve the workload identically without
recompiling; after a maintenance broadcast, thread and process shards
must show zero ``snapshot_divergences`` against a fresh freeze; and —
in full runs — batched must beat naive by :data:`MIN_SPEEDUP` and, on a
box with at least :data:`PROCESS_GATE_CPUS` cores, process shards must
beat thread shards by :data:`MIN_PROCESS_SPEEDUP` in queries/sec.

Run standalone (``python benchmarks/bench_service_throughput.py``) or via
pytest with the usual harness fixtures.
"""

from __future__ import annotations

import asyncio
import math
import os
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH/pytest-pythonpath)
except ModuleNotFoundError:  # standalone run from a clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.frozen_backends import installed_backends, shared_memory_available
from repro.core.maintenance import MaintenanceReport
from repro.core.serialize import load_snapshot, save_snapshot
from repro.eval.config import DEFAULT_K, DEFAULT_OBJECTS, DEFAULT_RANGE_FRACTION
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.metrics import snapshot_divergences
from repro.eval.reporting import ExperimentResult
from repro.eval.runner import build_engine, make_objects
from repro.queries.workload import mixed_workload
from repro.serving import RoadService, ServiceConfig

#: Queries/sec the batched path must gain over naive submission (full runs).
MIN_SPEEDUP = 2.0

#: Queries/sec process shards must gain over thread shards (full runs on a
#: box with at least PROCESS_GATE_CPUS cores — the GIL race needs cores).
MIN_PROCESS_SPEEDUP = 2.0
PROCESS_GATE_CPUS = 4

#: In-flight queries per timed round and the distinct pool they draw from
#: (the overlap is what admission coalescing exploits).
NUM_QUERIES = 240
DISTINCT_QUERIES = 30

#: Read-only frozen replicas in the sharded configuration (smoke runs);
#: full runs on a multi-core box race PROCESS_GATE_CPUS shards instead.
REPLICA_COUNT = 2

#: Timed rounds per path; the median absorbs scheduler noise.
ROUNDS = 5


def _hot_workload(network, count, distinct, *, k, radius, seed):
    """``count`` in-flight queries cycling over ``distinct`` distinct ones."""
    pool = mixed_workload(network, distinct, k=k, radius=radius, seed=seed)
    return [pool[i % len(pool)] for i in range(count)]


def _submit_all(service, queries):
    """All queries through the async front-end; answers + per-query ms."""

    async def timed(query):
        start = time.perf_counter()
        answer = await service.submit(query)
        return answer, (time.perf_counter() - start) * 1000.0

    async def go():
        return await asyncio.gather(*(timed(q) for q in queries))

    pairs = asyncio.run(go())
    return [answer for answer, _ in pairs], [ms for _, ms in pairs]


def _percentile(sorted_ms, fraction):
    """Nearest-rank percentile over an already sorted latency list."""
    if not sorted_ms:
        return 0.0
    rank = math.ceil(fraction * len(sorted_ms)) - 1
    return sorted_ms[min(max(rank, 0), len(sorted_ms) - 1)]


def _timed_rounds(service, queries):
    timings, answers, latencies = [], None, []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        answers, round_ms = _submit_all(service, queries)
        timings.append((time.perf_counter() - start) * 1000.0)
        latencies.extend(round_ms)
    latencies.sort()
    return statistics.median(timings), answers, latencies


def run_throughput_comparison(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    fraction: float = DEFAULT_RANGE_FRACTION,
    num_queries: int = NUM_QUERIES,
    distinct: int = DISTINCT_QUERIES,
    num_nodes=None,
    shard_workers=None,
    seed: int = 0,
):
    """Race the front-end policies over one frozen engine.

    Returns ``(result, summary)``: the rendered table data and
    ``{path: {qps, speedup, identical, p50/p95/p99}}`` plus the
    cold-start, divergence and backend-identity verdicts.  ``num_nodes``
    overrides the profile size and ``shard_workers`` the shard count
    (CI smoke runs use a tiny replica and a fixed worker count).
    """
    dataset = load_dataset(network, num_nodes)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    engine = build_engine(
        "ROAD", dataset.network, objects,
        road_levels=dataset_levels(network), road_mode_override="frozen",
    )
    radius = dataset.radius(fraction)
    queries = _hot_workload(
        dataset.network, num_queries, distinct, k=k, radius=radius, seed=seed
    )
    if shard_workers is None:
        # The process-vs-thread race only means something with cores to
        # spread over; a 1-2 core box keeps the smoke-sized shard count.
        cpus = os.cpu_count() or 1
        shard_workers = (
            PROCESS_GATE_CPUS if cpus >= PROCESS_GATE_CPUS else REPLICA_COUNT
        )

    batching_on = dict(max_batch=num_queries, max_delay_ms=50.0)
    # CPU-heavy shard scenario: coalescing off (every query pays real
    # traversal CPU) and small admission batches, so one wave round-robins
    # many execute_many dispatches across the shards instead of one.
    shard_batching = dict(
        max_batch=max(4, num_queries // (shard_workers * 4)),
        max_delay_ms=50.0,
        coalesce=False,
    )
    services = {
        "naive": RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", max_batch=1, coalesce=False
            ),
        ),
        "batched": RoadService(
            engine, config=ServiceConfig(mode="frozen", **batching_on)
        ),
        "sharded": RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", replicas=REPLICA_COUNT, **batching_on
            ),
        ),
        "thread-shard": RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", replicas=shard_workers, **shard_batching
            ),
        ),
    }
    if shared_memory_available():
        services["process-shard"] = RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", replicas=shard_workers,
                replica_mode="process", **shard_batching
            ),
        )
    reference = services["batched"].run_many(queries)

    result = ExperimentResult(
        "service_throughput",
        f"RoadService front-end policies on {network} "
        f"(|O|={num_objects}, {num_queries} in-flight queries, "
        f"{distinct} distinct, k={k})",
        [
            "path", "wall_ms", "p50_ms", "p95_ms", "p99_ms",
            "qps", "speedup", "identical",
        ],
    )
    summary = {"shard_workers": shard_workers}
    naive_ms = None
    for name, service in services.items():
        wall_ms, answers, latencies = _timed_rounds(service, queries)
        if name == "naive":
            naive_ms = wall_ms
        identical = answers == reference
        qps = num_queries / (wall_ms / 1000.0) if wall_ms else float("inf")
        speedup = naive_ms / wall_ms if wall_ms else float("inf")
        summary[name] = {
            "qps": qps, "speedup": speedup, "identical": identical,
            "p50_ms": _percentile(latencies, 0.50),
            "p95_ms": _percentile(latencies, 0.95),
            "p99_ms": _percentile(latencies, 0.99),
        }
        result.add_row(
            path=name,
            wall_ms=wall_ms,
            p50_ms=summary[name]["p50_ms"],
            p95_ms=summary[name]["p95_ms"],
            p99_ms=summary[name]["p99_ms"],
            qps=f"{qps:,.0f}",
            speedup=f"{speedup:.2f}x",
            identical=str(identical),
        )

    # Byte-identity of the async front-end across every installed array
    # backend (the sync reference comes from the engine's own snapshot).
    backend_identity = {}
    for backend in installed_backends():
        snapshot = engine.road.freeze(backend=backend)
        service = RoadService(
            snapshot, config=ServiceConfig(mode="frozen", **batching_on)
        )
        backend_identity[backend] = (
            _submit_all(service, queries)[0] == reference
        )
        service.close()
        snapshot.close()
    summary["backends_identical"] = backend_identity

    # Snapshot cold start: save the frozen snapshot to disk, map it back
    # with zero array copies, and serve the workload straight off the
    # mmap — no freeze, no recompile, byte-identical answers.
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "service.roadsnp"
        warm = engine.road.freeze()
        snapshot_bytes = save_snapshot(warm, snapshot_path)
        warm.close()
        cold = load_snapshot(snapshot_path)
        cold_service = RoadService(
            cold, config=ServiceConfig(mode="frozen", **batching_on)
        )
        summary["cold_start"] = {
            "identical": _submit_all(cold_service, queries)[0] == reference,
            "snapshot_bytes": snapshot_bytes,
            "backend": cold.backend,
        }
        cold_service.close()
        cold.close()

    # Maintenance churn: one edge update broadcast to every shard set,
    # then probe thread and process shards for byte-identity against a
    # fresh freeze of the maintained road — the lockstep contract.
    u, v, dist = sorted(engine.network.edges())[0]
    outcome = services["sharded"].update_edge_distance(u, v, dist * 1.25)
    report = (
        outcome
        if isinstance(outcome, MaintenanceReport)
        else engine.last_report
    )
    for name in ("thread-shard", "process-shard"):
        if name in services:
            services[name].apply_report(report)
    fresh = engine.road.freeze()
    rnd = random.Random(5)
    divergences = {}
    for name in ("sharded", "thread-shard", "process-shard"):
        if name not in services:
            continue
        divergences[name] = sum(
            len(snapshot_divergences(rnd, replica, fresh, probes=3))
            for replica in services[name].replicas
        )
    fresh.close()
    summary["divergences"] = divergences
    # And the maintained shards still agree with the maintained primary.
    post_churn = services["batched"].run_many(queries)
    summary["post_churn_identical"] = all(
        _submit_all(services[name], queries)[0] == post_churn
        for name in divergences
    )
    summary["process_gate_live"] = (
        "process-shard" in services
        and (os.cpu_count() or 1) >= PROCESS_GATE_CPUS
    )

    for service in services.values():
        service.close()

    result.note(
        f"workload: {num_queries} concurrent submits over {distinct} "
        f"distinct queries; batched coalesces duplicates and runs one "
        f"execute_many per predicate bucket; sharded adds "
        f"{REPLICA_COUNT} frozen replicas on worker threads; "
        f"thread-shard/process-shard race {shard_workers} shards on "
        f"small uncoalesced batches (max_batch="
        f"{shard_batching['max_batch']})"
    )
    result.note(
        f"gates (full runs): batched >= {MIN_SPEEDUP:.0f}x naive "
        f"queries/sec; process-shard >= {MIN_PROCESS_SPEEDUP:.0f}x "
        f"thread-shard on >= {PROCESS_GATE_CPUS} cores; all paths and "
        f"backends ({', '.join(backend_identity)}) byte-identical to "
        f"sync run_many; mmap cold start serves identically "
        f"({summary['cold_start']['snapshot_bytes']:,} snapshot bytes); "
        f"0 shard divergences after a maintenance broadcast"
    )
    result.note(
        f"params: network={network} num_nodes={dataset.network.num_nodes} "
        f"objects={num_objects} k={k} rounds={ROUNDS} seed={seed}"
    )
    return result, summary


def _assert_gates(summary, *, smoke: bool) -> None:
    """The acceptance bars shared by the pytest gate and main()."""
    paths = ("naive", "batched", "sharded", "thread-shard", "process-shard")
    for path in paths:
        if path not in summary:
            continue
        assert summary[path]["identical"], (
            f"{path}: async answers diverged from sync run_many"
        )
    for backend, identical in summary["backends_identical"].items():
        assert identical, f"{backend}: backend answers diverged"
    assert summary["cold_start"]["identical"], (
        "mmap cold start diverged from sync run_many"
    )
    assert summary["cold_start"]["backend"] == "mmap", (
        "cold start did not serve straight off the mapped snapshot"
    )
    for path, count in summary["divergences"].items():
        assert count == 0, (
            f"{path}: {count} snapshot divergence(s) after the "
            f"maintenance broadcast"
        )
    assert summary["post_churn_identical"], (
        "maintained shards diverged from the maintained primary"
    )
    if not smoke:  # tiny-network timings are scheduler noise
        speedup = summary["batched"]["speedup"]
        assert speedup >= MIN_SPEEDUP, (
            f"admission batching only {speedup:.2f}x naive submission "
            f"(bar: {MIN_SPEEDUP:.1f}x)"
        )
        if summary["process_gate_live"]:
            ratio = (
                summary["process-shard"]["qps"]
                / summary["thread-shard"]["qps"]
            )
            assert ratio >= MIN_PROCESS_SPEEDUP, (
                f"process shards only {ratio:.2f}x thread shards "
                f"(bar: {MIN_PROCESS_SPEEDUP:.1f}x at "
                f"{summary['shard_workers']} workers)"
            )


def test_service_throughput(results_dir):
    """The acceptance gate: >=2x naive throughput, byte-identical paths."""
    from conftest import publish

    result, summary = run_throughput_comparison()
    _assert_gates(summary, smoke=False)
    publish(result, results_dir)


def main() -> int:
    from conftest import publish_main

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        result, summary = run_throughput_comparison(
            num_nodes=300, num_queries=80, distinct=16,
            shard_workers=REPLICA_COUNT,
        )
    else:
        result, summary = run_throughput_comparison()
    publish_main(
        result, smoke=smoke,
        smoke_note="smoke mode: 300-node replica, 80 in-flight queries — "
                   "not comparable to full CA runs",
    )
    _assert_gates(summary, smoke=smoke)
    print(
        f"\nadmission batching: {summary['batched']['speedup']:.2f}x naive "
        f"({summary['batched']['qps']:,.0f} vs "
        f"{summary['naive']['qps']:,.0f} queries/sec)"
    )
    if "process-shard" in summary:
        ratio = (
            summary["process-shard"]["qps"] / summary["thread-shard"]["qps"]
        )
        gate = (
            "live" if summary["process_gate_live"]
            else f"off: needs >= {PROCESS_GATE_CPUS} cores"
        )
        print(
            f"process shards: {ratio:.2f}x thread shards at "
            f"{summary['shard_workers']} workers (gate {gate})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
