"""RoadService front-end: async admission batching vs naive per-query submit.

A serving node sees many concurrent users whose queries overlap heavily
(popular places get asked for again and again).  This bench races three
front-end policies over the same frozen engine and a hot workload
(``NUM_QUERIES`` in-flight queries drawn from ``DISTINCT_QUERIES``
distinct ones):

* ``naive`` — admission batching off (``max_batch=1``, no coalescing):
  every ``submit`` flushes alone, the pre-service behaviour of looping
  ``execute`` per request;
* ``batched`` — per-predicate admission batching + coalescing: in-flight
  queries join one bucket, duplicates execute once, each bucket runs as
  a single ``execute_many``;
* ``sharded`` — the batched policy over ``REPLICA_COUNT`` read-only
  frozen replicas served from worker threads.

Acceptance gates: every path (and every installed array backend) must
return results byte-identical to the sync ``run_many`` reference, and —
in full runs — the batched path must beat naive per-query submission by
at least :data:`MIN_SPEEDUP` in queries/sec.

Run standalone (``python benchmarks/bench_service_throughput.py``) or via
pytest with the usual harness fixtures.
"""

from __future__ import annotations

import asyncio
import os
import statistics
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH/pytest-pythonpath)
except ModuleNotFoundError:  # standalone run from a clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.frozen_backends import installed_backends
from repro.eval.config import DEFAULT_K, DEFAULT_OBJECTS, DEFAULT_RANGE_FRACTION
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.reporting import ExperimentResult
from repro.eval.runner import build_engine, make_objects
from repro.queries.workload import mixed_workload
from repro.serving import RoadService, ServiceConfig

#: Queries/sec the batched path must gain over naive submission (full runs).
MIN_SPEEDUP = 2.0

#: In-flight queries per timed round and the distinct pool they draw from
#: (the overlap is what admission coalescing exploits).
NUM_QUERIES = 240
DISTINCT_QUERIES = 30

#: Read-only frozen replicas in the sharded configuration.
REPLICA_COUNT = 2

#: Timed rounds per path; the median absorbs scheduler noise.
ROUNDS = 5


def _hot_workload(network, count, distinct, *, k, radius, seed):
    """``count`` in-flight queries cycling over ``distinct`` distinct ones."""
    pool = mixed_workload(network, distinct, k=k, radius=radius, seed=seed)
    return [pool[i % len(pool)] for i in range(count)]


def _submit_all(service, queries):
    async def go():
        return await asyncio.gather(*(service.submit(q) for q in queries))

    return asyncio.run(go())


def _timed_rounds(service, queries):
    timings, answers = [], None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        answers = _submit_all(service, queries)
        timings.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(timings), answers


def run_throughput_comparison(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    fraction: float = DEFAULT_RANGE_FRACTION,
    num_queries: int = NUM_QUERIES,
    distinct: int = DISTINCT_QUERIES,
    num_nodes=None,
    seed: int = 0,
):
    """Race the three front-end policies over one frozen engine.

    Returns ``(result, summary)``: the rendered table data and
    ``{path: {qps, speedup, identical}}``.  ``num_nodes`` overrides the
    profile size (CI smoke runs use a tiny replica).
    """
    dataset = load_dataset(network, num_nodes)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    engine = build_engine(
        "ROAD", dataset.network, objects,
        road_levels=dataset_levels(network), road_mode_override="frozen",
    )
    radius = dataset.radius(fraction)
    queries = _hot_workload(
        dataset.network, num_queries, distinct, k=k, radius=radius, seed=seed
    )

    batching_on = dict(max_batch=num_queries, max_delay_ms=50.0)
    services = {
        "naive": RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", max_batch=1, coalesce=False
            ),
        ),
        "batched": RoadService(
            engine, config=ServiceConfig(mode="frozen", **batching_on)
        ),
        "sharded": RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", replicas=REPLICA_COUNT, **batching_on
            ),
        ),
    }
    reference = services["batched"].run_many(queries)

    result = ExperimentResult(
        "service_throughput",
        f"RoadService front-end policies on {network} "
        f"(|O|={num_objects}, {num_queries} in-flight queries, "
        f"{distinct} distinct, k={k})",
        ["path", "wall_ms", "qps", "speedup", "identical"],
    )
    summary = {}
    naive_ms = None
    for name, service in services.items():
        wall_ms, answers = _timed_rounds(service, queries)
        if name == "naive":
            naive_ms = wall_ms
        identical = answers == reference
        qps = num_queries / (wall_ms / 1000.0) if wall_ms else float("inf")
        speedup = naive_ms / wall_ms if wall_ms else float("inf")
        summary[name] = {
            "qps": qps, "speedup": speedup, "identical": identical,
        }
        result.add_row(
            path=name,
            wall_ms=wall_ms,
            qps=f"{qps:,.0f}",
            speedup=f"{speedup:.2f}x",
            identical=str(identical),
        )
        service.close()

    # Byte-identity of the async front-end across every installed array
    # backend (the sync reference comes from the engine's own snapshot).
    backend_identity = {}
    for backend in installed_backends():
        snapshot = engine.road.freeze(backend=backend)
        service = RoadService(
            snapshot, config=ServiceConfig(mode="frozen", **batching_on)
        )
        backend_identity[backend] = _submit_all(service, queries) == reference
        service.close()
    summary["backends_identical"] = backend_identity

    result.note(
        f"workload: {num_queries} concurrent submits over {distinct} "
        f"distinct queries; batched coalesces duplicates and runs one "
        f"execute_many per predicate bucket; sharded adds "
        f"{REPLICA_COUNT} frozen replicas on worker threads"
    )
    result.note(
        f"gates (full runs): batched >= {MIN_SPEEDUP:.0f}x naive "
        f"queries/sec; all paths and backends "
        f"({', '.join(backend_identity)}) byte-identical to sync run_many"
    )
    result.note(
        f"params: network={network} num_nodes={dataset.network.num_nodes} "
        f"objects={num_objects} k={k} rounds={ROUNDS} seed={seed}"
    )
    return result, summary


def _assert_gates(summary, *, smoke: bool) -> None:
    """The acceptance bars shared by the pytest gate and main()."""
    for path in ("naive", "batched", "sharded"):
        assert summary[path]["identical"], (
            f"{path}: async answers diverged from sync run_many"
        )
    for backend, identical in summary["backends_identical"].items():
        assert identical, f"{backend}: backend answers diverged"
    if not smoke:  # tiny-network timings are scheduler noise
        speedup = summary["batched"]["speedup"]
        assert speedup >= MIN_SPEEDUP, (
            f"admission batching only {speedup:.2f}x naive submission "
            f"(bar: {MIN_SPEEDUP:.1f}x)"
        )


def test_service_throughput(results_dir):
    """The acceptance gate: >=2x naive throughput, byte-identical paths."""
    from conftest import publish

    result, summary = run_throughput_comparison()
    _assert_gates(summary, smoke=False)
    publish(result, results_dir)


def main() -> int:
    from conftest import publish_main

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        result, summary = run_throughput_comparison(
            num_nodes=300, num_queries=80, distinct=16
        )
    else:
        result, summary = run_throughput_comparison()
    publish_main(
        result, smoke=smoke,
        smoke_note="smoke mode: 300-node replica, 80 in-flight queries — "
                   "not comparable to full CA runs",
    )
    _assert_gates(summary, smoke=smoke)
    print(
        f"\nadmission batching: {summary['batched']['speedup']:.2f}x naive "
        f"({summary['batched']['qps']:,.0f} vs "
        f"{summary['naive']['qps']:,.0f} queries/sec)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
