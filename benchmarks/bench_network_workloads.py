"""Network-analysis workloads: OD matrices, service areas, in-route kNN.

The multi-source kernel's reason to exist is amortisation: one frontier
(or one lane-tagged heap) answers for S sources what the single-source
path answers S times.  This bench measures exactly that trade on the
frozen engine:

* ``od-single`` — every (source, target) pair as its own
  ``ODMatrixQuery((s,), (t,))`` through one ``execute_many`` batch: the
  pre-kernel behaviour of looping point-to-point queries;
* ``od-batched`` — the same cell set as one ``ODMatrixQuery(sources,
  targets)``: one shared heap, lanes retiring as their targets settle;
* ``service-area`` / ``route-knn`` — the collect sweeps, timed per query
  for tail percentiles.

Beyond wall-clock, the artifact records per-query ``p50_ms``/``p95_ms``/
``p99_ms`` — the ``python -m repro.eval.compare`` ratchet holds the tails
to their committed baselines, not just the medians.

Acceptance gates: the batched matrix must produce cell-for-cell the same
distances as the single-pair loop; charged ROAD, the frozen snapshot on
every installed backend, and the async serving paths (thread shards, and
process shards where shared memory exists) must return byte-identical
answers for one mixed workload of all three query kinds; after a
maintenance broadcast the shards must show zero ``snapshot_divergences``
(whose probes include the network workloads) and still match the
maintained primary; and — in full runs — ``od-batched`` must clear
:data:`MIN_BATCH_SPEEDUP` x the single-pair cells/sec.

Run standalone (``python benchmarks/bench_network_workloads.py``) or via
pytest with the usual harness fixtures.
"""

from __future__ import annotations

import asyncio
import math
import os
import random
import statistics
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH/pytest-pythonpath)
except ModuleNotFoundError:  # standalone run from a clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.frozen_backends import installed_backends, shared_memory_available
from repro.core.maintenance import MaintenanceReport
from repro.eval.config import DEFAULT_OBJECTS, DEFAULT_RANGE_FRACTION
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.metrics import snapshot_divergences
from repro.eval.reporting import ExperimentResult
from repro.eval.runner import build_engine, make_objects
from repro.queries.types import ODMatrixQuery, RouteKNNQuery, ServiceAreaQuery
from repro.serving import RoadService, ServiceConfig

#: Cells/sec the batched OD matrix must gain over the single-pair loop
#: (full runs only; smoke networks are scheduler noise).
MIN_BATCH_SPEEDUP = 2.0

#: OD matrix shape (|sources| x |targets|) and collect-sweep counts.
OD_SOURCES = 12
OD_TARGETS = 12
SWEEP_QUERIES = 30

#: Random-walk length seeding each RouteKNNQuery and its k.
ROUTE_STEPS = 8
ROUTE_K = 5

#: Timed rounds per path; the median absorbs scheduler noise.
ROUNDS = 5

#: Read-only frozen replicas per shard set in the identity checks.
REPLICA_COUNT = 2


def _random_walk(network, rnd, start, steps):
    """A connected node path: the shape of a routed trip."""
    path = [start]
    for _ in range(steps):
        hops = [node for node, _ in network.neighbours(path[-1])]
        if not hops:
            break
        path.append(rnd.choice(hops))
    return tuple(path)


def _build_workloads(network, rnd, *, od_sources, od_targets, sweeps, radius):
    """(batched OD, single-pair ODs, service areas, route kNNs)."""
    nodes = list(network.node_ids())
    sources = tuple(rnd.sample(nodes, od_sources))
    targets = tuple(rnd.sample(nodes, od_targets))
    batched = ODMatrixQuery(sources, targets)
    singles = [
        ODMatrixQuery((s,), (t,)) for s in sources for t in targets
    ]
    breaks = (radius / 3.0, 2.0 * radius / 3.0, radius)
    service_areas = [
        ServiceAreaQuery(rnd.choice(nodes), breaks) for _ in range(sweeps)
    ]
    route_knns = [
        RouteKNNQuery(
            _random_walk(network, rnd, rnd.choice(nodes), ROUTE_STEPS),
            ROUTE_K,
        )
        for _ in range(sweeps)
    ]
    return batched, singles, service_areas, route_knns


def _percentile(sorted_ms, fraction):
    """Nearest-rank percentile over an already sorted latency list."""
    if not sorted_ms:
        return 0.0
    rank = math.ceil(fraction * len(sorted_ms)) - 1
    return sorted_ms[min(max(rank, 0), len(sorted_ms) - 1)]


def _timed_rounds(engine, queries):
    """Median wall ms over ROUNDS, answers, and sorted per-query ms."""
    walls, answers, latencies = [], None, []
    for _ in range(ROUNDS):
        round_answers = []
        start = time.perf_counter()
        for query in queries:
            t0 = time.perf_counter()
            round_answers.append(engine.execute(query))
            latencies.append((time.perf_counter() - t0) * 1000.0)
        walls.append((time.perf_counter() - start) * 1000.0)
        answers = round_answers
    latencies.sort()
    return statistics.median(walls), answers, latencies


def _submit_all(service, queries):
    """All queries through the async front-end, answers in order."""

    async def go():
        return await asyncio.gather(*(service.submit(q) for q in queries))

    return asyncio.run(go())


def run_network_workloads(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    fraction: float = DEFAULT_RANGE_FRACTION,
    od_sources: int = OD_SOURCES,
    od_targets: int = OD_TARGETS,
    sweeps: int = SWEEP_QUERIES,
    num_nodes=None,
    seed: int = 0,
):
    """Race batched vs single-pair OD and time the collect sweeps.

    Returns ``(result, summary)``: the rendered table data and the gate
    inputs (``batch_speedup``, per-path identity verdicts, shard
    divergence counts).  ``num_nodes`` shrinks the profile for CI smoke.
    """
    dataset = load_dataset(network, num_nodes)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    engine = build_engine(
        "ROAD", dataset.network, objects,
        road_levels=dataset_levels(network), road_mode_override="frozen",
    )
    frozen = engine.road.freeze()
    rnd = random.Random(seed)
    batched, singles, service_areas, route_knns = _build_workloads(
        dataset.network, rnd,
        od_sources=od_sources, od_targets=od_targets, sweeps=sweeps,
        radius=dataset.radius(fraction),
    )
    cells = len(singles)
    mixed = [batched, *service_areas, *route_knns, *singles[:od_sources]]

    result = ExperimentResult(
        "network_workloads",
        f"Network-analysis workloads on {network} "
        f"(|O|={num_objects}, {od_sources}x{od_targets} OD cells, "
        f"{sweeps} sweeps per kind)",
        [
            "workload", "wall_ms", "p50_ms", "p95_ms", "p99_ms",
            "throughput", "speedup", "identical",
        ],
    )
    summary = {}

    # -- OD: the batched kernel vs the single-pair loop ----------------
    single_wall, single_answers, single_lat = _timed_rounds(frozen, singles)
    batched_wall, batched_answers, batched_lat = _timed_rounds(
        frozen, [batched]
    )
    flat_single = [cell for answer in single_answers for cell in answer]
    od_identical = flat_single == batched_answers[0]
    speedup = single_wall / batched_wall if batched_wall else float("inf")
    summary["od"] = {
        "batch_speedup": speedup,
        "identical": od_identical,
        "single_cells_per_sec": cells / (single_wall / 1000.0),
        "batched_cells_per_sec": cells / (batched_wall / 1000.0),
    }
    result.add_row(
        workload="od-single",
        wall_ms=single_wall,
        p50_ms=_percentile(single_lat, 0.50),
        p95_ms=_percentile(single_lat, 0.95),
        p99_ms=_percentile(single_lat, 0.99),
        throughput=f"{summary['od']['single_cells_per_sec']:,.0f} cells/s",
        speedup="1.00x",
        identical=str(od_identical),
    )
    result.add_row(
        workload="od-batched",
        wall_ms=batched_wall,
        p50_ms=_percentile(batched_lat, 0.50),
        p95_ms=_percentile(batched_lat, 0.95),
        p99_ms=_percentile(batched_lat, 0.99),
        throughput=f"{summary['od']['batched_cells_per_sec']:,.0f} cells/s",
        speedup=f"{speedup:.2f}x",
        identical=str(od_identical),
    )

    # -- The collect sweeps, timed per query for the tail ratchet ------
    reference = engine.road.execute_many(mixed)
    for label, queries in (
        ("service-area", service_areas),
        ("route-knn", route_knns),
    ):
        wall, answers, latencies = _timed_rounds(frozen, queries)
        identical = answers == engine.road.execute_many(queries)
        summary[label] = {"identical": identical}
        qps = len(queries) / (wall / 1000.0) if wall else float("inf")
        result.add_row(
            workload=label,
            wall_ms=wall,
            p50_ms=_percentile(latencies, 0.50),
            p95_ms=_percentile(latencies, 0.95),
            p99_ms=_percentile(latencies, 0.99),
            throughput=f"{qps:,.0f} q/s",
            speedup="",
            identical=str(identical),
        )

    # -- Byte identity: every backend serves the mixed workload -------
    summary["backends_identical"] = {}
    for backend in installed_backends():
        snapshot = engine.road.freeze(backend=backend)
        summary["backends_identical"][backend] = (
            snapshot.execute_many(mixed) == reference
        )
        snapshot.close()

    # -- Byte identity: the async serving paths ------------------------
    shard_config = dict(
        mode="frozen", replicas=REPLICA_COUNT,
        max_batch=8, max_delay_ms=5.0,
    )
    services = {
        "thread-shard": RoadService(
            engine, config=ServiceConfig(**shard_config)
        ),
    }
    if shared_memory_available():
        services["process-shard"] = RoadService(
            engine,
            config=ServiceConfig(replica_mode="process", **shard_config),
        )
    summary["serving_identical"] = {
        name: _submit_all(service, mixed) == reference
        for name, service in services.items()
    }

    # -- Maintenance churn: broadcast one patch, probe for divergence --
    u, v, dist = sorted(engine.network.edges())[0]
    outcome = services["thread-shard"].update_edge_distance(u, v, dist * 1.25)
    report = (
        outcome
        if isinstance(outcome, MaintenanceReport)
        else engine.last_report
    )
    for name, service in services.items():
        if name != "thread-shard":
            service.apply_report(report)
    fresh = engine.road.freeze()
    probe_rnd = random.Random(5)
    summary["divergences"] = {
        name: sum(
            len(snapshot_divergences(probe_rnd, replica, fresh, probes=3))
            for replica in service.replicas
        )
        for name, service in services.items()
    }
    fresh.close()
    post_churn = engine.road.execute_many(mixed)
    summary["post_churn_identical"] = all(
        _submit_all(service, mixed) == post_churn
        for service in services.values()
    )
    for service in services.values():
        service.close()
    frozen.close()

    result.note(
        f"workloads: {cells} OD cells as {cells} single-pair queries vs "
        f"one {od_sources}x{od_targets} batched matrix; {sweeps} "
        f"service-area queries (3 breaks) and {sweeps} route-kNN queries "
        f"({ROUTE_STEPS}-step walks, k={ROUTE_K}); identity checked on a "
        f"mixed workload across charged ROAD, every backend "
        f"({', '.join(summary['backends_identical'])}), and "
        f"{'/'.join(services) or 'no'} serving shards"
    )
    result.note(
        f"gates (full runs): od-batched >= {MIN_BATCH_SPEEDUP:.0f}x "
        f"single-pair cells/sec; all paths byte-identical; 0 shard "
        f"divergences after a maintenance broadcast"
    )
    result.note(
        f"params: network={network} num_nodes={dataset.network.num_nodes} "
        f"objects={num_objects} rounds={ROUNDS} seed={seed}"
    )
    return result, summary


def _assert_gates(summary, *, smoke: bool) -> None:
    """The acceptance bars shared by the pytest gate and main()."""
    assert summary["od"]["identical"], (
        "batched OD matrix diverged from the single-pair loop"
    )
    for label in ("service-area", "route-knn"):
        assert summary[label]["identical"], (
            f"{label}: frozen answers diverged from charged ROAD"
        )
    for backend, identical in summary["backends_identical"].items():
        assert identical, f"{backend}: backend answers diverged"
    for path, identical in summary["serving_identical"].items():
        assert identical, f"{path}: async answers diverged from the primary"
    for path, count in summary["divergences"].items():
        assert count == 0, (
            f"{path}: {count} snapshot divergence(s) after the "
            f"maintenance broadcast"
        )
    assert summary["post_churn_identical"], (
        "maintained shards diverged from the maintained primary"
    )
    if not smoke:  # tiny-network timings are scheduler noise
        speedup = summary["od"]["batch_speedup"]
        assert speedup >= MIN_BATCH_SPEEDUP, (
            f"batched OD matrix only {speedup:.2f}x the single-pair loop "
            f"(bar: {MIN_BATCH_SPEEDUP:.1f}x)"
        )


def test_network_workloads(results_dir):
    """The acceptance gate: >=2x batched OD, byte-identical everywhere."""
    from conftest import publish

    result, summary = run_network_workloads()
    _assert_gates(summary, smoke=False)
    publish(result, results_dir)


def main() -> int:
    from conftest import publish_main

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        result, summary = run_network_workloads(
            num_nodes=300, od_sources=6, od_targets=6, sweeps=10,
        )
    else:
        result, summary = run_network_workloads()
    publish_main(
        result, smoke=smoke,
        smoke_note="smoke mode: 300-node network, 6x6 OD matrix, 10 "
                   "sweeps per kind — not comparable to full CA runs",
    )
    _assert_gates(summary, smoke=smoke)
    print(
        f"\nbatched OD matrix: {summary['od']['batch_speedup']:.2f}x the "
        f"single-pair loop "
        f"({summary['od']['batched_cells_per_sec']:,.0f} vs "
        f"{summary['od']['single_cells_per_sec']:,.0f} cells/sec)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
