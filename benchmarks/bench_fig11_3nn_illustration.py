"""Figure 11: anatomy of one 3NN query across the four approaches."""

from conftest import publish

from repro.eval.datasets import load_dataset
from repro.eval.experiments import fig11_illustration
from repro.eval.runner import build_engines, make_objects
from repro.queries.types import KNNQuery


def test_fig11_report(results_dir, benchmark):
    """Time and I/O of a 3NN query with 5 sparse objects (Fig 11 setting)."""
    result = benchmark.pedantic(
        lambda: fig11_illustration(num_objects=5, k=3), rounds=1, iterations=1
    )
    publish(result, results_dir)


def test_bench_road_3nn(benchmark):
    """Benchmark: the ROAD 3NN query of Figure 11 (cold cache)."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 5, seed=0)
    engines = build_engines(dataset, objects, engines=("ROAD",))
    engine = engines["ROAD"]
    query = KNNQuery(sorted(dataset.network.node_ids())[0], 3)

    def run():
        engine.reset_io()
        return engine.execute(query)

    result = benchmark(run)
    assert len(result) == 3
