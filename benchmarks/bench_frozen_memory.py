"""FrozenRoad array backends: memory footprint vs batch-query throughput.

The compiled CSR snapshot has one logical layout and three physical
representations (:mod:`repro.core.frozen_backends`): pre-boxed Python
lists (``list``), stdlib typed buffers (``compact``), and numpy views
over the same buffers (``numpy``).  This bench freezes the Table-1
default network once per installed backend and reports, per backend:

* resident bytes of the compiled arrays (``FrozenRoad.memory_stats()``),
* batch throughput of ``execute_many`` on a mixed kNN/range workload,
* byte-identity against the ``list`` reference snapshot (the
  :func:`repro.eval.metrics.snapshot_divergences` probes).

Acceptance gates (full runs): the ``compact`` backend must hold resident
arrays at least :data:`MIN_MEMORY_RATIO` times smaller than ``list``
without exceeding :data:`MAX_LATENCY_RATIO` times its batch latency, and
every backend must serve with zero equivalence divergences.

A second scenario covers **multi-directory snapshots**: one
``road.freeze()`` over :data:`MULTI_DIRECTORIES` attached providers must
hold resident compiled arrays at least :data:`MIN_MULTI_MEMORY_SAVINGS`
times smaller than the N single-directory snapshots it replaces — the
entry arrays are compiled once and shared — while serving every
directory byte-identically to its dedicated snapshot
(:func:`repro.eval.metrics.snapshot_divergences` per directory), on
every installed backend.

Run standalone (``python benchmarks/bench_frozen_memory.py``) or via
pytest with the usual harness fixtures.
"""

from __future__ import annotations

import os
import random
import statistics
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH/pytest-pythonpath)
except ModuleNotFoundError:  # standalone run from a clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.frozen_backends import installed_backends
from repro.eval.config import DEFAULT_K, DEFAULT_OBJECTS, DEFAULT_RANGE_FRACTION
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.metrics import snapshot_divergences
from repro.eval.reporting import ExperimentResult, memory_note
from repro.eval.runner import build_engine, make_objects
from repro.queries.workload import mixed_workload

#: The acceptance bars for the compact backend (full runs).
MIN_MEMORY_RATIO = 4.0
#: Compact stores unboxed slots, so hot-loop reads box a fresh int/float
#: per access — measured at ~1.2-1.35x the list backend's batch latency
#: on the default network.  The bar allows that boxing tax (plus timer
#: noise) but forbids a structural slowdown.
MAX_LATENCY_RATIO = 1.4

#: execute_many repetitions per backend; the median absorbs timer noise.
BATCH_REPEATS = 5

#: The providers the multi-directory scenario attaches on one overlay.
MULTI_DIRECTORIES = ("objects", "hotels", "fuel")
#: One combined snapshot must hold its resident arrays at least this many
#: times smaller than the N single-directory snapshots it replaces.
MIN_MULTI_MEMORY_SAVINGS = 1.8


def run_memory_comparison(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    fraction: float = DEFAULT_RANGE_FRACTION,
    num_queries: int = 30,
    num_nodes=None,
    seed: int = 0,
    probes: int = 4,
):
    """Freeze one ROAD per installed backend and race the snapshots.

    Returns ``(result, summary)``: the rendered table data and a per-
    backend dict of ``{memory_ratio, latency_ratio, divergences,
    identical}`` relative to the ``list`` reference.  ``num_nodes``
    overrides the profile size (CI smoke runs use a tiny replica).
    """
    dataset = load_dataset(network, num_nodes)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    engine = build_engine(
        "ROAD", dataset.network, objects,
        road_levels=dataset_levels(network), road_mode_override="charged",
    )
    road = engine.road
    radius = dataset.radius(fraction)
    batch = mixed_workload(
        dataset.network, num_queries, k=k, radius=radius, seed=seed
    )

    result = ExperimentResult(
        "frozen_memory",
        f"FrozenRoad array backends on {network} "
        f"(|O|={num_objects}, k={k}, {num_queries}-query mixed batch)",
        [
            "backend", "freeze_ms", "resident_kib", "memory_ratio",
            "batch_ms", "latency_ratio", "identical",
        ],
    )
    backends = installed_backends()
    summary = {}
    reference = None
    reference_answers = None
    list_bytes = None
    list_batch_ms = None
    for name in backends:
        start = time.perf_counter()
        frozen = road.freeze(backend=name)
        freeze_ms = (time.perf_counter() - start) * 1000.0
        stats = frozen.memory_stats()
        timings = []
        answers = None
        for _ in range(BATCH_REPEATS):
            start = time.perf_counter()
            answers = frozen.execute_many(batch)
            timings.append((time.perf_counter() - start) * 1000.0)
        batch_ms = statistics.median(timings)
        if name == "list":
            reference = frozen
            reference_answers = answers
            list_bytes = stats["total_bytes"]
            list_batch_ms = batch_ms
            divergences = []
        else:
            divergences = snapshot_divergences(
                random.Random(seed), frozen, reference, probes=probes, k=k
            )
        identical = answers == reference_answers
        memory_ratio = list_bytes / stats["total_bytes"]
        latency_ratio = batch_ms / list_batch_ms if list_batch_ms else 1.0
        summary[name] = {
            "memory_ratio": memory_ratio,
            "latency_ratio": latency_ratio,
            "divergences": len(divergences),
            "identical": identical,
        }
        result.add_row(
            backend=name,
            freeze_ms=freeze_ms,
            resident_kib=stats["total_bytes"] / 1024.0,
            memory_ratio=f"{memory_ratio:.2f}x",
            batch_ms=batch_ms,
            latency_ratio=f"{latency_ratio:.2f}x",
            identical=str(identical and not divergences),
        )
        result.note(memory_note(stats))
    if "numpy" not in backends:
        result.note(
            "numpy backend not installed (pip install 'road-repro[numpy]')"
        )
    result.note(
        f"gates (full runs): compact >= {MIN_MEMORY_RATIO:.0f}x smaller "
        f"resident arrays than list, <= {MAX_LATENCY_RATIO:.2f}x its batch "
        f"latency, zero equivalence divergences on every backend"
    )
    result.note(
        f"params: network={network} num_nodes={dataset.network.num_nodes} "
        f"objects={num_objects} k={k} queries={num_queries} "
        f"repeats={BATCH_REPEATS} seed={seed}"
    )
    return result, summary


def run_multi_directory_comparison(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    fraction: float = DEFAULT_RANGE_FRACTION,
    num_queries: int = 30,
    num_nodes=None,
    seed: int = 0,
    probes: int = 4,
):
    """One combined freeze vs N single-directory freezes, per backend.

    Attaches :data:`MULTI_DIRECTORIES` providers to one ROAD, freezes
    them into a single multi-directory snapshot, and races it — resident
    memory and per-directory byte-identity — against a dedicated
    single-directory snapshot per provider.  Returns ``(result,
    summary)`` with per-backend ``{savings, divergences, identical}``.
    """
    dataset = load_dataset(network, num_nodes)
    engine = build_engine(
        "ROAD",
        dataset.network,
        make_objects(dataset.network, num_objects, seed=seed),
        road_levels=dataset_levels(network),
        road_mode_override="charged",
    )
    road = engine.road
    for i, name in enumerate(MULTI_DIRECTORIES):
        if name == "objects":
            continue  # the engine already attached the default provider
        road.attach_objects(
            make_objects(dataset.network, num_objects, seed=seed + i),
            name=name,
        )
    radius = dataset.radius(fraction)
    batch = mixed_workload(
        dataset.network, num_queries, k=k, radius=radius, seed=seed
    )

    result = ExperimentResult(
        "frozen_memory_multi",
        f"one multi-directory FrozenRoad vs {len(MULTI_DIRECTORIES)} "
        f"single-directory snapshots on {network} "
        f"(|O|={num_objects}/directory, {num_queries}-query mixed batch)",
        [
            "backend", "freeze_ms", "combined_kib", "singles_kib",
            "savings", "batch_ms", "identical",
        ],
    )
    summary = {}
    for name in installed_backends():
        start = time.perf_counter()
        combined = road.freeze(backend=name)
        freeze_ms = (time.perf_counter() - start) * 1000.0
        combined_bytes = combined.memory_stats()["total_bytes"]
        singles = {
            directory: road.freeze(directory=directory, backend=name)
            for directory in MULTI_DIRECTORIES
        }
        singles_bytes = sum(
            s.memory_stats()["total_bytes"] for s in singles.values()
        )
        divergences = []
        identical = True
        for directory, single in singles.items():
            divergences.extend(
                snapshot_divergences(
                    random.Random(seed), combined, single,
                    probes=probes, k=k, directory=directory,
                )
            )
            combined_answers = combined.execute_many(batch, directory=directory)
            if combined_answers != single.execute_many(batch):
                identical = False
        timings = []
        for _ in range(BATCH_REPEATS):
            start = time.perf_counter()
            combined.execute_many(batch)
            timings.append((time.perf_counter() - start) * 1000.0)
        savings = singles_bytes / combined_bytes
        summary[name] = {
            "savings": savings,
            "divergences": len(divergences),
            "identical": identical,
        }
        result.add_row(
            backend=name,
            freeze_ms=freeze_ms,
            combined_kib=combined_bytes / 1024.0,
            singles_kib=singles_bytes / 1024.0,
            savings=f"{savings:.2f}x",
            batch_ms=statistics.median(timings),
            identical=str(identical and not divergences),
        )
        result.note(memory_note(combined.memory_stats()))
    result.note(
        f"gate: one snapshot over {len(MULTI_DIRECTORIES)} directories "
        f">= {MIN_MULTI_MEMORY_SAVINGS:.1f}x smaller resident arrays than "
        f"{len(MULTI_DIRECTORIES)} single-directory snapshots, "
        f"byte-identical per directory on every backend"
    )
    result.note(
        f"params: network={network} num_nodes={dataset.network.num_nodes} "
        f"objects={num_objects}/directory k={k} queries={num_queries} "
        f"seed={seed}"
    )
    return result, summary


def _assert_multi_gates(summary) -> None:
    """The multi-directory acceptance bars (pytest gate and main())."""
    for name, stats in summary.items():
        assert stats["identical"], (
            f"{name}: combined snapshot diverged from a single-directory "
            f"freeze on execute_many"
        )
        assert stats["divergences"] == 0, (
            f"{name}: {stats['divergences']} per-directory equivalence "
            f"divergences"
        )
        assert stats["savings"] >= MIN_MULTI_MEMORY_SAVINGS, (
            f"{name}: combined snapshot only {stats['savings']:.2f}x "
            f"smaller than {len(MULTI_DIRECTORIES)} single snapshots "
            f"(bar: {MIN_MULTI_MEMORY_SAVINGS:.1f}x)"
        )


def _assert_gates(summary, *, smoke: bool) -> None:
    """The acceptance bars shared by the pytest gate and main()."""
    for name, stats in summary.items():
        assert stats["identical"], f"{name}: answers diverged from list"
        assert stats["divergences"] == 0, (
            f"{name}: {stats['divergences']} equivalence divergences"
        )
    compact = summary["compact"]
    assert compact["memory_ratio"] >= MIN_MEMORY_RATIO, (
        f"compact resident arrays only {compact['memory_ratio']:.2f}x "
        f"smaller than list (bar: {MIN_MEMORY_RATIO:.0f}x)"
    )
    if not smoke:  # tiny-network latencies are timer noise
        assert compact["latency_ratio"] <= MAX_LATENCY_RATIO, (
            f"compact batch latency {compact['latency_ratio']:.2f}x list "
            f"(bar: {MAX_LATENCY_RATIO:.2f}x)"
        )


def test_frozen_memory_report(results_dir):
    """The acceptance gate: >=4x smaller compact arrays, no slow serving."""
    from conftest import publish

    result, summary = run_memory_comparison()
    _assert_gates(summary, smoke=False)
    publish(result, results_dir)


def test_frozen_memory_multi_directory_report(results_dir):
    """The multi-directory gate: one snapshot >=1.8x smaller than N."""
    from conftest import publish

    result, summary = run_multi_directory_comparison()
    _assert_multi_gates(summary)
    publish(result, results_dir)


def main() -> int:
    from conftest import publish_main

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        result, summary = run_memory_comparison(num_nodes=300, num_queries=10)
        multi_result, multi_summary = run_multi_directory_comparison(
            num_nodes=300, num_queries=10
        )
    else:
        result, summary = run_memory_comparison()
        multi_result, multi_summary = run_multi_directory_comparison()
    smoke_note = (
        "smoke mode: 300-node replica, 10 queries — "
        "not comparable to full CA runs"
    )
    publish_main(result, smoke=smoke, smoke_note=smoke_note)
    publish_main(multi_result, smoke=smoke, smoke_note=smoke_note)
    try:
        _assert_gates(summary, smoke=smoke)
        _assert_multi_gates(multi_summary)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    compact = summary["compact"]
    print(
        f"compact: {compact['memory_ratio']:.2f}x smaller resident arrays "
        f"(bar: {MIN_MEMORY_RATIO:.0f}x), {compact['latency_ratio']:.2f}x "
        f"list batch latency (bar: {MAX_LATENCY_RATIO:.2f}x, full runs)"
    )
    worst = min(multi_summary.values(), key=lambda s: s["savings"])
    print(
        f"multi-directory: one snapshot over {len(MULTI_DIRECTORIES)} "
        f"directories holds >= {worst['savings']:.2f}x less resident "
        f"memory than {len(MULTI_DIRECTORIES)} single snapshots "
        f"(bar: {MIN_MULTI_MEMORY_SAVINGS:.1f}x), byte-identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
