"""Figure 16: edge deletion/insertion time per engine and network."""

from conftest import publish

from repro.eval.datasets import load_dataset
from repro.eval.experiments import fig16_network_update
from repro.eval.runner import build_engines, make_objects


def test_fig16_report(results_dir, benchmark):
    """Set random edges to ~infinity and restore them (paper protocol)."""
    result = benchmark.pedantic(
        lambda: fig16_network_update(trials=3), rounds=1, iterations=1
    )
    by_engine = {}
    for row in result.rows:
        by_engine.setdefault(row["engine"], []).append(row)
    # Paper shape: DistIdx rewrites signatures network-wide; ROAD only
    # refreshes affected shortcuts; NetExp/Euclidean barely notice.
    for netexp, road, distidx in zip(
        by_engine["NetExp"], by_engine["ROAD"], by_engine["DistIdx"]
    ):
        assert distidx["delete_s"] > road["delete_s"]
        assert netexp["delete_s"] <= road["delete_s"] * 50
    publish(result, results_dir)


def test_bench_road_edge_update(benchmark):
    """Benchmark: one ROAD edge-distance change (filter-and-refresh)."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 100, seed=0)
    engine = build_engines(dataset, objects, engines=("ROAD",))["ROAD"]
    edges = sorted((u, v) for u, v, _ in engine.network.edges())
    state = {"i": 0, "flip": False}

    def update_one():
        u, v = edges[state["i"] % len(edges)]
        state["i"] += 1
        current = engine.network.edge_distance(u, v)
        engine.update_edge_distance(u, v, current * (2.0 if not state["flip"] else 0.5))
        state["flip"] = not state["flip"]

    benchmark.pedantic(update_one, rounds=10, iterations=1)
