"""Figure 14: index construction time and size vs network."""

from conftest import publish

from repro.eval.datasets import load_dataset
from repro.eval.experiments import fig14_index_vs_network
from repro.eval.runner import build_engine, make_objects


def test_fig14_report(results_dir, benchmark):
    """Build cost on CA / NA / SF with |O|=100."""
    result = benchmark.pedantic(fig14_index_vs_network, rounds=1, iterations=1)
    by_engine = {}
    for row in result.rows:
        by_engine.setdefault(row["engine"], {})[row["network"]] = row
    # Shape checks from the paper: DistIdx is the most expensive to build
    # and store on the big networks; ROAD stays well below it.
    for network in ("NA", "SF"):
        assert (
            by_engine["DistIdx"][network]["size_mb"]
            > by_engine["ROAD"][network]["size_mb"]
        ), f"DistIdx must out-size ROAD on {network}"
        assert (
            by_engine["DistIdx"][network]["build_s"]
            > by_engine["NetExp"][network]["build_s"]
        )
    ratio = (
        by_engine["ROAD"]["SF"]["size_mb"]
        / by_engine["DistIdx"]["SF"]["size_mb"]
    )
    result.note(f"measured: ROAD/SF index is {ratio:.0%} of DistIdx's "
                "(paper: ~33%)")
    publish(result, results_dir)


def test_bench_road_build_sf(benchmark):
    """Benchmark: ROAD construction on the dense urban network."""
    dataset = load_dataset("SF")
    objects = make_objects(dataset.network, 100, seed=0)
    benchmark.pedantic(
        lambda: build_engine("ROAD", dataset.network, objects),
        rounds=1,
        iterations=1,
    )
