"""Frozen fast path vs charged disk path on the Table-1 default network.

The charged path reproduces the paper's I/O figures; the compiled
:class:`~repro.core.frozen.FrozenRoad` is the serving hot path.  This bench
runs identical kNN / range workloads through both over the *same* built
index and reports per-query medians, asserting the fast path's contract:

* byte-identical answers,
* zero pager traffic during frozen queries,
* at least a 5x median speedup per query.

Run standalone (``python benchmarks/bench_frozen_vs_charged.py``) or via
pytest with the usual harness fixtures.
"""

from __future__ import annotations

import os
import statistics
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH/pytest-pythonpath)
except ModuleNotFoundError:  # standalone run from a clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.config import DEFAULT_K, DEFAULT_OBJECTS, DEFAULT_RANGE_FRACTION
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.reporting import ExperimentResult, memory_note
from repro.eval.runner import build_engine, make_objects
from repro.queries.workload import knn_workload, mixed_workload, range_workload

#: The acceptance bar for the compiled path.
MIN_SPEEDUP = 5.0


def _median_ms(run_query, queries) -> float:
    return statistics.median(
        _timed_ms(run_query, query) for query in queries
    )


def _timed_ms(run_query, query) -> float:
    start = time.perf_counter()
    run_query(query)
    return (time.perf_counter() - start) * 1000.0


def run_comparison(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    fraction: float = DEFAULT_RANGE_FRACTION,
    num_queries: int = 20,
    num_nodes=None,
    seed: int = 0,
):
    """Build one ROAD on the default network and race the two paths.

    Returns ``(result, speedups, io_diff)``: the rendered table data, the
    per-workload median speedups, and the pager-stats delta accumulated
    across every frozen query (must be all-zero).  ``num_nodes`` overrides
    the profile size (CI smoke runs use a tiny replica).
    """
    dataset = load_dataset(network, num_nodes)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    engine = build_engine(
        "ROAD", dataset.network, objects,
        road_levels=dataset_levels(network), road_mode_override="charged",
    )
    road = engine.road
    freeze_start = time.perf_counter()
    frozen = road.freeze()
    freeze_seconds = time.perf_counter() - freeze_start

    radius = dataset.radius(fraction)
    workloads = {
        "knn": knn_workload(dataset.network, num_queries, k, seed=seed),
        "range": range_workload(dataset.network, num_queries, radius, seed=seed),
        "mixed": mixed_workload(
            dataset.network, num_queries, k=k, radius=radius, seed=seed
        ),
    }

    result = ExperimentResult(
        "frozen_vs_charged",
        f"FrozenRoad vs charged path on {network} "
        f"(|O|={num_objects}, k={k}, r={fraction} diameter)",
        ["workload", "charged_ms", "frozen_ms", "speedup", "answers_equal"],
    )
    # Phase 1 — frozen: answers + timings under one pager-stats snapshot
    # (charged runs reset the counters, so they must not interleave).
    before = road.pager.stats.snapshot()
    frozen_answers = {
        label: [frozen.execute(q) for q in queries]
        for label, queries in workloads.items()
    }
    frozen_times = {
        label: _median_ms(frozen.execute, queries)
        for label, queries in workloads.items()
    }
    io_diff = road.pager.stats.diff(before)

    # Phase 2 — charged: the paper's protocol, every query starts cold
    # (cache reset outside the timed section, as in eval.metrics).
    def charged_query(query):
        engine.reset_io()
        return _timed_ms(road.execute, query)

    speedups = {}
    for label, queries in workloads.items():
        charged_ms = statistics.median(charged_query(q) for q in queries)
        engine.reset_io()
        charged_answers = [road.execute(q) for q in queries]
        frozen_ms = frozen_times[label]
        speedup = charged_ms / frozen_ms if frozen_ms > 0 else float("inf")
        speedups[label] = speedup
        result.add_row(
            workload=label,
            charged_ms=charged_ms,
            frozen_ms=frozen_ms,
            speedup=speedup,
            answers_equal=str(frozen_answers[label] == charged_answers),
        )
    result.note(
        f"freeze: {freeze_seconds * 1000:.1f} ms for "
        f"{frozen.num_nodes:,} nodes; " + memory_note(frozen.memory_stats())
    )
    result.note(
        f"pager traffic during frozen queries: reads={io_diff.reads} "
        f"writes={io_diff.writes} hits={io_diff.hits} misses={io_diff.misses}"
    )
    result.note(
        f"params: network={network} num_nodes={dataset.network.num_nodes} "
        f"objects={num_objects} k={k} queries={num_queries} seed={seed}"
    )

    # Batch entry points: whole workload in one call, shared predicate caches.
    batch = workloads["mixed"]
    start = time.perf_counter()
    frozen_batch = frozen.execute_many(batch)
    frozen_batch_ms = (time.perf_counter() - start) * 1000.0
    engine.reset_io()
    start = time.perf_counter()
    charged_batch = road.execute_many(batch)
    charged_batch_ms = (time.perf_counter() - start) * 1000.0
    result.note(
        f"execute_many({len(batch)} queries): charged {charged_batch_ms:.1f} ms, "
        f"frozen {frozen_batch_ms:.1f} ms, identical={frozen_batch == charged_batch}"
    )
    return result, speedups, io_diff


def test_frozen_vs_charged_report(results_dir):
    """The acceptance gate: zero I/O, identical answers, >=5x median."""
    from conftest import publish

    result, speedups, io_diff = run_comparison()
    assert io_diff.reads == 0 and io_diff.writes == 0, (
        f"frozen queries must not touch the pager: {io_diff}"
    )
    assert io_diff.hits == 0 and io_diff.misses == 0, (
        f"frozen queries must not touch the buffer either: {io_diff}"
    )
    for row in result.rows:
        assert row["answers_equal"] == "True", f"answers diverged: {row}"
    for label, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"{label}: {speedup:.1f}x median speedup is below the "
            f"{MIN_SPEEDUP:.0f}x bar"
        )
    publish(result, results_dir)


def test_bench_frozen_knn_query(benchmark):
    """Microbenchmark: one frozen 5NN query on CA (vs bench_fig17_knn)."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, DEFAULT_OBJECTS, seed=0)
    engine = build_engine(
        "ROAD", dataset.network, objects,
        road_levels=dataset_levels("CA"), road_mode_override="frozen",
    )
    nodes = sorted(dataset.network.node_ids())
    node = nodes[len(nodes) // 2]
    result = benchmark(lambda: engine.knn(node, DEFAULT_K))
    assert len(result) == DEFAULT_K


def main() -> int:
    from conftest import publish_main

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        result, speedups, io_diff = run_comparison(num_nodes=300, num_queries=6)
    else:
        result, speedups, io_diff = run_comparison()
    publish_main(
        result, smoke=smoke,
        smoke_note="smoke mode: 300-node replica, 6 queries — "
                   "not comparable to full CA runs",
    )
    worst = min(speedups.values())
    zero_io = (
        io_diff.reads == io_diff.writes == io_diff.hits == io_diff.misses == 0
    )
    print(
        f"worst median speedup: {worst:.1f}x "
        f"(bar: {MIN_SPEEDUP:.0f}x), zero pager traffic: {zero_io}"
    )
    if smoke:
        return 0 if zero_io else 1  # report-only: no speedup bar on tiny nets
    return 0 if worst >= MIN_SPEEDUP and zero_io else 1


if __name__ == "__main__":
    raise SystemExit(main())
