"""Figure 18: range query performance (a: vs r, b: vs |O|, c: vs network)."""

from conftest import publish

from repro.eval.config import OBJECT_COUNTS
from repro.eval.datasets import load_dataset
from repro.eval.experiments import (
    fig18a_range_vs_radius,
    fig18b_range_vs_objects,
    fig18c_range_vs_network,
)
from repro.eval.reporting import dominance
from repro.eval.runner import build_engines, make_objects
from repro.queries.types import RangeQuery


def test_fig18a_report(results_dir, benchmark):
    """Range time vs radius on CA, |O|=100."""
    result = benchmark.pedantic(fig18a_range_vs_radius, rounds=1, iterations=1)
    # Paper shape: processing time grows with r for the expansion engines.
    for engine_name in ("NetExp", "ROAD"):
        times = [
            r["time_ms"] for r in result.rows if r["engine"] == engine_name
        ]
        assert times[-1] > times[0], f"{engine_name} must grow with r"
    publish(result, results_dir)


def test_fig18b_report(results_dir, benchmark):
    """Range time vs |O| on CA, r=0.1 diameter."""
    result = benchmark.pedantic(
        lambda: fig18b_range_vs_objects(object_counts=OBJECT_COUNTS),
        rounds=1,
        iterations=1,
    )
    publish(result, results_dir)


def test_fig18c_report(results_dir, benchmark):
    """Range time vs network, |O|=100, r=0.1 diameter."""
    result = benchmark.pedantic(fig18c_range_vs_network, rounds=1, iterations=1)
    assert dominance(result, "time_ms") != "Euclidean"
    publish(result, results_dir)


def test_bench_road_range_query(benchmark):
    """Benchmark: one cold ROAD range query at the default radius."""
    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 100, seed=0)
    engine = build_engines(dataset, objects, engines=("ROAD",))["ROAD"]
    nodes = sorted(dataset.network.node_ids())
    query = RangeQuery(nodes[len(nodes) // 2], dataset.radius(0.1))

    def run():
        engine.reset_io()
        return engine.execute(query)

    benchmark(run)
