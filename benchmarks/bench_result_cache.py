"""Cross-request result cache: Zipf repeat mass converted into cache hits.

Production query streams are heavily skewed — a handful of popular
places absorbs most of the traffic.  Admission coalescing already
dedupes *in-flight* duplicates, but every new flush re-executes the
same popular queries from scratch.  This bench races two identically
batched front-ends over one frozen engine and a Zipf-skewed workload
(``NUM_QUERIES`` submits per round drawn rank-weighted from
``DISTINCT_QUERIES`` distinct queries):

* ``uncached`` — coalescing on, result cache off: each round pays one
  ``execute_many`` per flush, the pre-cache behaviour;
* ``cached`` — the same config plus ``ServiceConfig(result_cache=True)``:
  repeat submits across rounds are served from the footprint-indexed
  :class:`repro.serving.result_cache.ResultCache` without touching the
  executor.

Maintenance churn (edge reweighs and object listings) is interleaved
between rounds through the shared engine, so the cached path must keep
re-earning its hits through report-driven invalidation — a stale entry
would surface instantly as a round-identity failure.

Acceptance gates: every round's cached answers must be byte-identical
to the uncached service's answers for the same engine state; a final
warm cached pass must match the sync ``run_many`` reference; the served
snapshot must show zero ``snapshot_divergences`` against a fresh freeze
after all churn; the cache must have recorded hits *and* report-driven
invalidations (the churn actually bit); and — in full runs — the cached
path must clear :data:`MIN_CACHE_SPEEDUP` in queries/sec over the
uncached path (smoke runs skip the timing bar like every other bench:
tiny-network timings are scheduler noise).

Run standalone (``python benchmarks/bench_result_cache.py``) or via
pytest with the usual harness fixtures.
"""

from __future__ import annotations

import asyncio
import collections
import math
import os
import random
import statistics
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH/pytest-pythonpath)
except ModuleNotFoundError:  # standalone run from a clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.config import DEFAULT_OBJECTS
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.metrics import snapshot_divergences
from repro.eval.reporting import ExperimentResult
from repro.eval.runner import build_engine, make_objects
from repro.objects.model import SpatialObject
from repro.queries.workload import mixed_workload
from repro.serving import RoadService, ServiceConfig

#: Queries/sec the cached path must gain over the uncached path (full
#: runs; on a Zipf stream the warm rounds skip execution entirely).
MIN_CACHE_SPEEDUP = 3.0

#: Submits per timed round and the distinct pool they draw from.  The
#: Zipf exponent shapes the rank weights (1/(rank+1)^s): the head of
#: the pool dominates, the tail keeps the cache from degenerating into
#: a single hot key.
NUM_QUERIES = 240
DISTINCT_QUERIES = 24
ZIPF_S = 1.1

#: Query shape: heavier than the throughput bench's defaults.  A cache
#: hit saves exactly one execution, so its payoff scales with what a
#: repeated execution costs — the race uses deep kNN and wide ranges so
#: the executor does real traversal work per distinct query.
CACHE_K = 10
CACHE_RANGE_FRACTION = 0.35

#: Timed rounds per path and how often maintenance churn lands between
#: them.  Round 0 is the cold populate; churn before rounds 3 and 6
#: invalidates footprint-dirtied entries, so the cached path re-earns
#: its hits twice while warm rounds stay the median the qps gate reads.
ROUNDS = 8
CHURN_EVERY = 3


def _zipf_workload(network, count, distinct, *, k, radius, seed):
    """``count`` submits drawn rank-weighted from ``distinct`` queries."""
    pool = mixed_workload(network, distinct, k=k, radius=radius, seed=seed)
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(pool))]
    rnd = random.Random(seed + 1)
    return rnd.choices(pool, weights=weights, k=count)


def _submit_all(service, queries):
    """All queries through the async front-end; answers + per-query ms."""

    async def timed(query):
        start = time.perf_counter()
        answer = await service.submit(query)
        return answer, (time.perf_counter() - start) * 1000.0

    async def go():
        return await asyncio.gather(*(timed(q) for q in queries))

    pairs = asyncio.run(go())
    return [answer for answer, _ in pairs], [ms for _, ms in pairs]


def _percentile(sorted_ms, fraction):
    """Nearest-rank percentile over an already sorted latency list."""
    if not sorted_ms:
        return 0.0
    rank = math.ceil(fraction * len(sorted_ms)) - 1
    return sorted_ms[min(max(rank, 0), len(sorted_ms) - 1)]


def _churn(service, step, rnd, hot_node):
    """One maintenance op through the shared engine between rounds.

    Alternates edge reweighs with object listings, both on an edge
    incident to the workload's hottest query node — so the report's
    dirty set provably intersects cached footprints (a random edge on
    a big network would usually miss them, invalidating nothing).
    Both services share the engine, so the uncached side sees the same
    post-patch world; only the cached side has entries to lose.
    """
    edges = sorted((u, v) for u, v, _ in service.executor.network.edges())
    incident = [e for e in edges if hot_node in e] or edges
    u, v = incident[rnd.randrange(len(incident))]
    if step % 2 == 0:
        distance = service.executor.network.edge_distance(u, v)
        service.update_edge_distance(u, v, distance * rnd.choice([0.6, 1.7]))
        return
    directory = service.executor.road.directory()
    delta = rnd.uniform(0.0, service.executor.network.edge_distance(u, v))
    service.insert_object(
        SpatialObject(directory.objects.next_id(), (u, v), delta, {})
    )


def run_cache_comparison(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = CACHE_K,
    fraction: float = CACHE_RANGE_FRACTION,
    num_queries: int = NUM_QUERIES,
    distinct: int = DISTINCT_QUERIES,
    num_nodes=None,
    rounds: int = ROUNDS,
    seed: int = 0,
):
    """Race cached vs uncached serving over one frozen engine.

    Returns ``(result, summary)``: the rendered table data and
    ``{path: {qps, p50/p95/p99}}`` plus the speedup, per-round identity,
    divergence and cache-counter verdicts.  ``num_nodes`` overrides the
    profile size (CI smoke runs use a tiny replica).
    """
    dataset = load_dataset(network, num_nodes)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    engine = build_engine(
        "ROAD", dataset.network, objects,
        road_levels=dataset_levels(network), road_mode_override="frozen",
    )
    radius = dataset.radius(fraction)
    queries = _zipf_workload(
        dataset.network, num_queries, distinct, k=k, radius=radius, seed=seed
    )
    batching = dict(max_batch=num_queries, max_delay_ms=50.0)
    uncached = RoadService(
        engine, config=ServiceConfig(mode="frozen", **batching)
    )
    cached = RoadService(
        engine,
        config=ServiceConfig(
            mode="frozen", result_cache=True,
            cache_budget=4 * distinct, **batching,
        ),
    )

    rnd = random.Random(seed + 17)
    hot_node = collections.Counter(
        q.node for q in queries if hasattr(q, "node")
    ).most_common(1)[0][0]
    walls = {"uncached": [], "cached": []}
    latencies = {"uncached": [], "cached": []}
    rounds_identical = []
    churn_ops = 0
    for step in range(rounds):
        if step and step % CHURN_EVERY == 0:
            _churn(cached, step, rnd, hot_node)
            churn_ops += 1
        start = time.perf_counter()
        expected, round_ms = _submit_all(uncached, queries)
        walls["uncached"].append((time.perf_counter() - start) * 1000.0)
        latencies["uncached"].extend(round_ms)
        start = time.perf_counter()
        answers, round_ms = _submit_all(cached, queries)
        walls["cached"].append((time.perf_counter() - start) * 1000.0)
        latencies["cached"].extend(round_ms)
        rounds_identical.append(answers == expected)

    # A final warm pass against the sync reference: hit-served answers
    # must still be the objects run_many would compute right now.
    reference = uncached.run_many(queries)
    sync_identical = _submit_all(cached, queries)[0] == reference

    # The served snapshot itself must agree with a fresh freeze of the
    # maintained road — churn patched, not corrupted, what the cache
    # footprints were recorded against.
    fresh = engine.road.freeze()
    probe = random.Random(seed + 23)
    snapshots = cached.replicas or [cached.executor.frozen]
    divergences = sum(
        len(snapshot_divergences(probe, snapshot, fresh, probes=3))
        for snapshot in snapshots
    )
    fresh.close()

    cache_stats = dict(cached.stats()["result_cache"])

    result = ExperimentResult(
        "result_cache",
        f"Cross-request result cache on {network} "
        f"(|O|={num_objects}, {num_queries} Zipf submits over "
        f"{distinct} distinct, s={ZIPF_S}, {rounds} rounds, "
        f"{churn_ops} churn ops)",
        [
            "path", "wall_ms", "p50_ms", "p95_ms", "p99_ms",
            "qps", "speedup", "identical",
        ],
    )
    summary = {
        "rounds_identical": all(rounds_identical),
        "sync_identical": sync_identical,
        "divergences": divergences,
        "cache": cache_stats,
        "churn_ops": churn_ops,
    }
    uncached_ms = statistics.median(walls["uncached"])
    for name in ("uncached", "cached"):
        wall_ms = statistics.median(walls[name])
        ordered = sorted(latencies[name])
        qps = num_queries / (wall_ms / 1000.0) if wall_ms else float("inf")
        speedup = uncached_ms / wall_ms if wall_ms else float("inf")
        summary[name] = {
            "qps": qps,
            "p50_ms": _percentile(ordered, 0.50),
            "p95_ms": _percentile(ordered, 0.95),
            "p99_ms": _percentile(ordered, 0.99),
        }
        result.add_row(
            path=name,
            wall_ms=wall_ms,
            p50_ms=summary[name]["p50_ms"],
            p95_ms=summary[name]["p95_ms"],
            p99_ms=summary[name]["p99_ms"],
            qps=f"{qps:,.0f}",
            speedup=f"{speedup:.2f}x",
            identical=str(all(rounds_identical) if name == "cached" else True),
        )
    summary["speedup"] = uncached_ms / statistics.median(walls["cached"])

    for service in (cached, uncached):
        service.close()

    result.note(
        f"workload: {num_queries} submits/round rank-weighted "
        f"1/(rank+1)^{ZIPF_S} over {distinct} distinct queries; churn "
        f"(edge reweighs + object listings) lands every {CHURN_EVERY} "
        f"rounds through the shared engine, so cached answers must be "
        f"re-earned through report-driven invalidation"
    )
    lookups = cache_stats["hits"] + cache_stats["misses"]
    hit_ratio = cache_stats["hits"] / lookups if lookups else 0.0
    result.note(
        f"cache counters: {cache_stats['hits']} hits / "
        f"{cache_stats['misses']} misses / "
        f"{cache_stats['invalidations']} invalidations / "
        f"{cache_stats['evictions']} evictions "
        f"(hit ratio {hit_ratio:.2f}, budget {cache_stats['budget']})"
    )
    result.note(
        f"gates: cached answers byte-identical to uncached every round "
        f"and to sync run_many after the final warm pass; 0 snapshot "
        f"divergences after churn; hits and invalidations both "
        f"recorded; cached >= {MIN_CACHE_SPEEDUP:.0f}x uncached "
        f"queries/sec (full runs)"
    )
    result.note(
        f"params: network={network} num_nodes={dataset.network.num_nodes} "
        f"objects={num_objects} k={k} rounds={rounds} seed={seed}"
    )
    return result, summary


def _assert_gates(summary, *, smoke: bool) -> None:
    """The acceptance bars shared by the pytest gate and main()."""
    assert summary["rounds_identical"], (
        "cached answers diverged from the uncached service inside a "
        "round — a stale entry survived maintenance churn"
    )
    assert summary["sync_identical"], (
        "warm cached answers diverged from the sync run_many reference"
    )
    assert summary["divergences"] == 0, (
        f"{summary['divergences']} snapshot divergence(s) against a "
        f"fresh freeze after churn"
    )
    cache = summary["cache"]
    assert cache["hits"] > 0, "the Zipf workload produced no cache hits"
    assert cache["invalidations"] > 0, (
        "interleaved churn invalidated nothing — the report-driven "
        "eviction path never ran"
    )
    if not smoke:  # tiny-network timings are scheduler noise
        speedup = summary["speedup"]
        assert speedup >= MIN_CACHE_SPEEDUP, (
            f"result cache only {speedup:.2f}x uncached serving "
            f"(bar: {MIN_CACHE_SPEEDUP:.1f}x)"
        )


def test_result_cache(results_dir):
    """The acceptance gate: >=3x uncached throughput, zero divergences."""
    from conftest import publish

    result, summary = run_cache_comparison()
    _assert_gates(summary, smoke=False)
    publish(result, results_dir)


def main() -> int:
    from conftest import publish_main

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        result, summary = run_cache_comparison(
            num_nodes=300, num_queries=100, distinct=16,
        )
    else:
        result, summary = run_cache_comparison()
    publish_main(
        result, smoke=smoke,
        smoke_note="smoke mode: 300-node replica, 100 Zipf submits — "
                   "not comparable to full CA runs",
    )
    _assert_gates(summary, smoke=smoke)
    cache = summary["cache"]
    print(
        f"\nresult cache: {summary['speedup']:.2f}x uncached serving "
        f"({summary['cached']['qps']:,.0f} vs "
        f"{summary['uncached']['qps']:,.0f} queries/sec); "
        f"{cache['hits']} hits, {cache['invalidations']} invalidations "
        f"across {summary['churn_ops']} churn ops"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
