"""Figure 19: impact of the Rnet hierarchy depth l (p=4)."""

from conftest import publish

from repro.eval.datasets import load_dataset
from repro.eval.experiments import fig19_hierarchy_levels
from repro.eval.runner import build_engine, make_objects


def test_fig19_report(results_dir, benchmark):
    """Level sweep per network: build time up, query time down."""
    result = benchmark.pedantic(fig19_hierarchy_levels, rounds=1, iterations=1)
    by_network = {}
    for row in result.rows:
        by_network.setdefault(row["network"], []).append(row)
    for network, rows in by_network.items():
        builds = [r["build_s"] for r in rows]
        queries = [r["query_ms"] for r in rows]
        assert builds[-1] > builds[0], f"{network}: build cost must grow with l"
        assert queries[-1] < queries[0] * 1.25, (
            f"{network}: query time must drop (or stay flat) as l grows"
        )
    publish(result, results_dir)


def test_bench_road_build_deep_hierarchy(benchmark):
    """Benchmark: building ROAD at the deepest swept level on CA."""
    from repro.eval.config import profile

    dataset = load_dataset("CA")
    objects = make_objects(dataset.network, 100, seed=0)
    deepest = profile("CA").level_sweep[-1]
    benchmark.pedantic(
        lambda: build_engine(
            "ROAD", dataset.network, objects, road_levels=deepest
        ),
        rounds=1,
        iterations=1,
    )
