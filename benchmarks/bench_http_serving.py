"""HTTP serving edge: open-loop load over the ASGI app, per-path tails.

The serving stack's last hop is :class:`repro.serving.http.RoadServiceApp`
— queries arrive as JSON, ride the admission buckets, and leave as JSON.
This bench drives that app **in process** (ASGI calls, no socket: the
numbers measure the serving stack, not loopback TCP) with an open-loop
arrival schedule: request *i* is dispatched at ``t0 + i/rate`` whether or
not earlier requests have finished, and each latency is measured from its
*scheduled* dispatch time — the coordinated-omission-free convention, so
a stall inflates the tail instead of politely pausing the load.

The run table crosses workload mixes (pure kNN vs the mixed kNN/range/
aggregate workload) with serving paths (unsharded frozen engine, thread
shards, process shards when shared memory is available), recording
achieved qps plus exact nearest-rank ``p50_ms``/``p95_ms``/``p99_ms``
into ``BENCH_http_serving[_smoke].json`` — the ``repro.eval.compare``
ratchet holds the ``p*_ms`` columns to their committed baseline by
**max** per-row ratio (see ``--tail-threshold``).

Acceptance gates: every HTTP answer decodes byte-identical to the sync
``run_many`` reference (the wire codecs add nothing and lose nothing —
JSON carries exact IEEE doubles); every response is a 200; and after an
edge-distance patch submitted through ``POST /maintenance``, the sharded
services show zero ``snapshot_divergences`` against a fresh freeze and
keep answering byte-identical to the maintained primary.

Run standalone (``python benchmarks/bench_http_serving.py``,
``REPRO_BENCH_SMOKE=1`` for the CI-sized run) or via pytest.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import random
import statistics
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401  (installed, or PYTHONPATH/pytest-pythonpath)
except ModuleNotFoundError:  # standalone run from a clean checkout
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.frozen_backends import shared_memory_available
from repro.eval.config import DEFAULT_K, DEFAULT_OBJECTS, DEFAULT_RANGE_FRACTION
from repro.eval.datasets import dataset_levels, load_dataset
from repro.eval.metrics import snapshot_divergences
from repro.eval.reporting import ExperimentResult
from repro.eval.runner import build_engine, make_objects
from repro.queries.types import KNNQuery
from repro.queries.workload import mixed_workload
from repro.serving import RoadService, ServiceConfig
from repro.serving.http import RoadServiceApp
from repro.serving.wire import decode_result, encode_query

#: Requests per timed round and the distinct pool they draw from.
NUM_REQUESTS = 240
DISTINCT_QUERIES = 30

#: Replica shards per sharded path (smoke and full: the tails being
#: ratcheted must come from a fixed topology).
REPLICA_COUNT = 2

#: Timed open-loop rounds per row; latencies pool across rounds so the
#: p99 rank rests on rounds * NUM_REQUESTS samples.
ROUNDS = 3

#: The offered rate is this fraction of the calibrated closed-loop
#: throughput: high enough to queue, low enough not to diverge.
LOAD_FACTOR = 0.7
MIN_RATE = 50.0


def _knn_workload(network, count, *, k, seed):
    rnd = random.Random(seed)
    nodes = list(range(network.num_nodes))
    return [KNNQuery(node=rnd.choice(nodes), k=k) for _ in range(count)]


def _hot(pool, count):
    """``count`` requests cycling over the distinct query pool."""
    return [pool[i % len(pool)] for i in range(count)]


async def _call(app, method, path, payload=None):
    """One in-process ASGI request; returns (status, decoded JSON body)."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    messages = [{"type": "http.request", "body": body, "more_body": False}]
    response = {"status": 0, "body": b""}

    async def receive():
        if messages:
            return messages.pop(0)
        return {"type": "http.disconnect"}

    async def send(message):
        if message["type"] == "http.response.start":
            response["status"] = message["status"]
        else:
            response["body"] += message.get("body", b"")

    await app({"type": "http", "method": method, "path": path}, receive, send)
    raw = response["body"]
    return response["status"], json.loads(raw) if raw else None


def _percentile(sorted_ms, fraction):
    """Nearest-rank percentile over an already sorted latency list."""
    if not sorted_ms:
        return 0.0
    rank = math.ceil(fraction * len(sorted_ms)) - 1
    return sorted_ms[min(max(rank, 0), len(sorted_ms) - 1)]


def _closed_loop(app, queries):
    """All queries at once (closed loop): answers + wall-clock ms.

    Doubles as the warm-up and the rate calibration for the open-loop
    rounds that follow.
    """

    async def go():
        return await asyncio.gather(
            *(
                _call(app, "POST", "/query", {"query": encode_query(q)})
                for q in queries
            )
        )

    start = time.perf_counter()
    responses = asyncio.run(go())
    wall_ms = (time.perf_counter() - start) * 1000.0
    answers = [_decode_answer(status, body) for status, body in responses]
    return answers, wall_ms


def _decode_answer(status, body):
    if status != 200 or not isinstance(body, dict):
        return None
    return decode_result(body.get("result", body.get("results")))


def _open_loop(app, queries, rate):
    """One open-loop round at ``rate`` req/s; per-request scheduled latency."""

    async def go():
        loop = asyncio.get_running_loop()
        t0 = loop.time()

        async def one(index, query):
            target = t0 + index / rate
            delay = target - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            status, body = await _call(
                app, "POST", "/query", {"query": encode_query(query)}
            )
            # Latency from the *scheduled* dispatch time: queueing delay
            # (including a late start under backlog) counts against the
            # tail — closing the loop here would hide exactly the stalls
            # an open-loop harness exists to see.
            return status, body, (loop.time() - target) * 1000.0

        results = await asyncio.gather(
            *(one(i, q) for i, q in enumerate(queries))
        )
        return results, loop.time() - t0

    results, wall_s = asyncio.run(go())
    ok = all(status == 200 for status, _body, _ms in results)
    answers = [_decode_answer(status, body) for status, body, _ms in results]
    latencies = [ms for _status, _body, ms in results]
    qps = len(queries) / wall_s if wall_s else float("inf")
    return ok, answers, latencies, qps


def run_http_load(
    *,
    network: str = "CA",
    num_objects: int = DEFAULT_OBJECTS,
    k: int = DEFAULT_K,
    fraction: float = DEFAULT_RANGE_FRACTION,
    num_requests: int = NUM_REQUESTS,
    distinct: int = DISTINCT_QUERIES,
    num_nodes=None,
    rounds: int = ROUNDS,
    seed: int = 0,
):
    """The run table: workload mix x serving path, open-loop percentiles.

    Returns ``(result, summary)`` where ``summary`` carries per-row
    ``{qps, rate, identical, http_ok, p50/p95/p99}`` plus the
    maintenance-churn verdicts (``divergences``,
    ``post_churn_identical``).
    """
    dataset = load_dataset(network, num_nodes)
    objects = make_objects(dataset.network, num_objects, seed=seed)
    engine = build_engine(
        "ROAD", dataset.network, objects,
        road_levels=dataset_levels(network), road_mode_override="frozen",
    )
    radius = dataset.radius(fraction)
    mixes = {
        "knn": _hot(
            _knn_workload(dataset.network, distinct, k=k, seed=seed),
            num_requests,
        ),
        "mixed": _hot(
            mixed_workload(
                dataset.network, distinct, k=k, radius=radius, seed=seed
            ),
            num_requests,
        ),
    }
    batching = dict(max_batch=64, max_delay_ms=2.0)
    services = {
        "direct": RoadService(
            engine, config=ServiceConfig(mode="frozen", **batching)
        ),
        "thread-shard": RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", replicas=REPLICA_COUNT, **batching
            ),
        ),
    }
    if shared_memory_available():
        services["process-shard"] = RoadService(
            engine,
            config=ServiceConfig(
                mode="frozen", replicas=REPLICA_COUNT,
                replica_mode="process", **batching
            ),
        )
    apps = {name: RoadServiceApp(service) for name, service in services.items()}

    result = ExperimentResult(
        "http_serving",
        f"HTTP serving edge on {network} (|O|={num_objects}, "
        f"{num_requests} open-loop requests over {distinct} distinct, "
        f"k={k}, {REPLICA_COUNT} replicas)",
        ["path", "rate_qps", "qps", "p50_ms", "p95_ms", "p99_ms", "identical"],
    )
    summary = {}
    for mix_name, queries in mixes.items():
        reference = services["direct"].run_many(queries)
        for path_name, app in apps.items():
            row = f"{mix_name}:{path_name}"
            # Closed-loop warm-up calibrates the offered rate.
            warm_answers, warm_ms = _closed_loop(app, queries)
            closed_qps = (
                len(queries) / (warm_ms / 1000.0) if warm_ms else MIN_RATE
            )
            rate = max(MIN_RATE, closed_qps * LOAD_FACTOR)
            ok, answers, latencies, qps = True, warm_answers, [], 0.0
            pooled = []
            for _ in range(rounds):
                round_ok, answers, round_ms, qps = _open_loop(
                    app, queries, rate
                )
                ok = ok and round_ok
                pooled.extend(round_ms)
            pooled.sort()
            identical = warm_answers == reference and answers == reference
            summary[row] = {
                "qps": qps,
                "rate": rate,
                "http_ok": ok,
                "identical": identical,
                "p50_ms": _percentile(pooled, 0.50),
                "p95_ms": _percentile(pooled, 0.95),
                "p99_ms": _percentile(pooled, 0.99),
            }
            result.add_row(
                path=row,
                rate_qps=f"{rate:,.0f}",
                qps=f"{qps:,.0f}",
                p50_ms=summary[row]["p50_ms"],
                p95_ms=summary[row]["p95_ms"],
                p99_ms=summary[row]["p99_ms"],
                identical=str(identical),
            )

    # Maintenance churn through the HTTP edge: one edge-distance patch
    # POSTed to the thread-shard app broadcasts through that service;
    # the report is then relayed to the other shard sets (they share the
    # one primary engine), and every replica must probe byte-identical
    # to a fresh freeze of the maintained road.
    u, v, dist = sorted(engine.network.edges())[0]
    status, body = asyncio.run(
        _call(
            apps["thread-shard"], "POST", "/maintenance",
            {
                "op": "update_edge_distance",
                "u": u, "v": v, "distance": dist * 1.25,
            },
        )
    )
    summary["maintenance_http"] = {"status": status, "body": body}
    report = engine.last_report
    for name, service in services.items():
        if name != "thread-shard" and service.replicas:
            service.apply_report(report)
    fresh = engine.road.freeze()
    rnd = random.Random(5)
    divergences = {}
    for name, service in services.items():
        divergences[name] = sum(
            len(snapshot_divergences(rnd, replica, fresh, probes=3))
            for replica in service.replicas
        )
    fresh.close()
    summary["divergences"] = divergences
    # Post-churn: the HTTP batch endpoint against the maintained primary.
    churn_queries = mixes["mixed"][:distinct]
    post_churn = services["direct"].run_many(churn_queries)
    batch_payload = {"queries": [encode_query(q) for q in churn_queries]}
    post_ok = True
    for app in apps.values():
        status, body = asyncio.run(
            _call(app, "POST", "/query", batch_payload)
        )
        answers = (
            [decode_result(item) for item in body["results"]]
            if status == 200
            else None
        )
        post_ok = post_ok and answers == post_churn
    summary["post_churn_identical"] = post_ok

    for service in services.values():
        service.close()

    result.note(
        f"open loop: requests dispatched at t0 + i/rate with rate = "
        f"{LOAD_FACTOR:.0%} of the calibrated closed-loop throughput; "
        f"latency measured from the scheduled dispatch time "
        f"(coordinated-omission-free); percentiles pool "
        f"{rounds} x {num_requests} samples"
    )
    result.note(
        "gates: every response 200 and byte-identical to sync run_many; "
        "after a POST /maintenance edge patch, zero snapshot divergences "
        "on every shard set and byte-identical post-churn batch answers"
    )
    result.note(
        f"params: network={network} num_nodes={dataset.network.num_nodes} "
        f"objects={num_objects} k={k} rounds={rounds} seed={seed}"
    )
    return result, summary


def _assert_gates(summary) -> None:
    """The acceptance bars shared by the pytest gate and main()."""
    for row, stats in summary.items():
        if not isinstance(stats, dict) or "identical" not in stats:
            continue
        assert stats["http_ok"], f"{row}: non-200 responses under load"
        assert stats["identical"], (
            f"{row}: HTTP answers diverged from sync run_many"
        )
    assert summary["maintenance_http"]["status"] == 200, (
        f"POST /maintenance failed: {summary['maintenance_http']}"
    )
    for name, count in summary["divergences"].items():
        assert count == 0, (
            f"{name}: {count} snapshot divergence(s) after the HTTP "
            f"maintenance patch"
        )
    assert summary["post_churn_identical"], (
        "post-churn HTTP batch answers diverged from the maintained primary"
    )


def test_http_serving(results_dir):
    """The acceptance gate: byte-identical HTTP serving, patched shards."""
    from conftest import publish

    result, summary = run_http_load()
    _assert_gates(summary)
    publish(result, results_dir)


def main() -> int:
    from conftest import publish_main

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        result, summary = run_http_load(
            num_nodes=300, num_requests=60, distinct=12, rounds=2,
        )
    else:
        result, summary = run_http_load()
    publish_main(
        result, smoke=smoke,
        smoke_note="smoke mode: 300-node replica, 60 open-loop requests — "
                   "not comparable to full CA runs",
    )
    _assert_gates(summary)
    rows = {
        name: stats
        for name, stats in summary.items()
        if isinstance(stats, dict) and "qps" in stats
    }
    best = max(rows, key=lambda name: rows[name]["qps"])
    print(
        f"\nbest path: {best} at {rows[best]['qps']:,.0f} qps "
        f"(p99 {rows[best]['p99_ms']:.3f} ms); "
        f"median p99 across rows: "
        f"{statistics.median(s['p99_ms'] for s in rows.values()):.3f} ms"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
