"""Ablations: the design choices DESIGN.md calls out (beyond the figures)."""

from conftest import publish

from repro.eval.ablations import (
    ablation_abstracts,
    ablation_lemma4,
    ablation_metric,
    ablation_partitioner,
)


def test_ablation_lemma4_report(results_dir, benchmark):
    """Lemma-4 shortcut reduction: smaller overlay, transitive hops."""
    result = benchmark.pedantic(ablation_lemma4, rounds=1, iterations=1)
    on = next(r for r in result.rows if r["reduction"] == "on")
    off = next(r for r in result.rows if r["reduction"] == "off")
    assert on["shortcuts_stored"] <= off["shortcuts_stored"]
    assert on["overlay_mb"] <= off["overlay_mb"] * 1.01
    publish(result, results_dir)


def test_ablation_abstracts_report(results_dir, benchmark):
    """Abstract representations under a selective predicate."""
    result = benchmark.pedantic(ablation_abstracts, rounds=1, iterations=1)
    by_label = {r["abstract"]: r for r in result.rows}
    # Counting abstracts cannot prune on attributes -> more traversal I/O.
    assert by_label["counting"]["io_pages"] >= by_label["exact"]["io_pages"]
    # Fixed-size summaries are the compact options.
    assert by_label["bloom"]["directory_mb"] > 0
    publish(result, results_dir)


def test_ablation_partitioner_report(results_dir, benchmark):
    """KL vs geometric vs grid vs object-based partitioning."""
    result = benchmark.pedantic(ablation_partitioner, rounds=1, iterations=1)
    by_label = {r["partitioner"]: r for r in result.rows}
    assert (
        by_label["geometric+KL"]["level1_borders"]
        <= by_label["geometric"]["level1_borders"]
    ), "KL refinement must not increase border nodes"
    publish(result, results_dir)


def test_ablation_metric_report(results_dir, benchmark):
    """Travel-time metric: ROAD + NetExp agree, Euclidean refuses."""
    result = benchmark.pedantic(ablation_metric, rounds=1, iterations=1)
    by_engine = {r["engine"]: r for r in result.rows}
    assert by_engine["ROAD"]["status"] == "ok"
    assert "refused" in by_engine["Euclidean"]["status"]
    publish(result, results_dir)
