"""Table 1: evaluation parameters, plus dataset synthesis cost."""

from conftest import publish

from repro.eval.config import profiles, scale_profile
from repro.eval.datasets import load_dataset
from repro.eval.experiments import table1_parameters
from repro.graph.stats import network_stats


def test_table1_report(results_dir, benchmark):
    """Render the parameter sheet and the active dataset statistics."""
    result = benchmark.pedantic(table1_parameters, rounds=1, iterations=1)
    result.note(f"active scale profile: {scale_profile()}")
    for name, _prof in profiles().items():
        dataset = load_dataset(name)
        stats = network_stats(dataset.network)
        result.note(f"{name} replica: {stats.describe()}")
    publish(result, results_dir)


def test_bench_dataset_synthesis(benchmark):
    """Benchmark: generating the CA replica (the harness's substrate)."""
    from repro.eval.config import profile
    from repro.graph.generators import road_network

    prof = profile("CA")
    benchmark.pedantic(
        lambda: road_network(
            prof.num_nodes, prof.edge_ratio, seed=prof.seed, clusters=prof.clusters
        ),
        rounds=1,
        iterations=1,
    )
